package explore

import (
	"fmt"
	"reflect"
	"testing"

	"mtbench/internal/core"
	"mtbench/internal/repository"
	"mtbench/internal/sched"
)

// reducedModes are the reduction configurations the equivalence
// contract pins, each applied at both worker counts.
var reducedModes = []struct {
	name string
	set  func(*Options)
}{
	{"dpor", func(o *Options) { o.DPOR = true }},
	{"cache", func(o *Options) { o.StateCache = true }},
	{"dpor+cache", func(o *Options) { o.DPOR = true; o.StateCache = true }},
}

// TestReducedEquivalence is the soundness contract of the reduction
// layer, pinned over the whole program repository: for every program
// whose full tree exhausts within budget, exploration with DPOR and/or
// the state cache — at any worker count — must find exactly the same
// deduplicated BugSignature set as full exploration, never executing
// more schedules than the full tree holds. On the two benchmark gate
// programs (philosophers, account) the DPOR+cache search must explore
// at most 40% of the unreduced schedule count (the CI reduction gate
// pins the same bound through cmd/explore).
//
// Both sides share a MaxSteps bound so spin-wait programs stay
// explorable: step counts are invariant within an equivalence class,
// so truncation lands identically on the full and reduced trees.
func TestReducedEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-repository exploration sweep in -short mode")
	}
	budget, maxSteps := 30000, int64(5000)
	if raceEnabled {
		// Race-instrumented runs are ~20x slower; a smaller budget
		// keeps the sweep meaningful (the parallel machinery and the
		// small trees) without re-proving the largest trees.
		budget = 3000
	}
	for _, prog := range repository.All() {
		body := prog.BodyWith(smallParams[prog.Name])
		full := Explore(Options{MaxSchedules: budget, MaxSteps: maxSteps, Workers: 1}, body)
		if full.Err != nil {
			t.Fatalf("%s: %v", prog.Name, full.Err)
		}
		if !full.Exhausted {
			t.Logf("%s: full tree exceeds %d schedules; skipping equivalence", prog.Name, budget)
			continue
		}
		fullBugs := bugKeys(full)

		for _, mode := range reducedModes {
			for _, workers := range []int{1, 8} {
				opts := Options{MaxSchedules: budget, MaxSteps: maxSteps, Workers: workers}
				mode.set(&opts)
				red := Explore(opts, body)
				label := fmt.Sprintf("%s/%s/workers=%d", prog.Name, mode.name, workers)
				if red.Err != nil {
					t.Fatalf("%s: %v", label, red.Err)
				}
				if !red.Exhausted {
					t.Errorf("%s: reduced search did not exhaust (%d schedules)", label, red.Schedules)
					continue
				}
				if rb := bugKeys(red); !reflect.DeepEqual(rb, fullBugs) {
					t.Errorf("%s: bug sets differ\n  full:    %v\n  reduced: %v", label, fullBugs, rb)
				}
				if red.Schedules > full.Schedules {
					t.Errorf("%s: reduced search grew the tree: %d vs full %d", label, red.Schedules, full.Schedules)
				}
				if workers == 1 {
					t.Logf("%s: %d -> %d schedules (%.1f%%) sleep=%d por=%d backtracks=%d hits=%d",
						label, full.Schedules, red.Schedules, 100*float64(red.Schedules)/float64(full.Schedules),
						red.Stats.SleepPruned, red.Stats.PORPruned, red.Stats.Backtracks, red.Stats.StateHits)
				}
				if mode.name == "dpor+cache" && (prog.Name == "philosophers" || prog.Name == "account") {
					if 100*red.Schedules > 40*full.Schedules {
						t.Errorf("%s: reduction gate: %d schedules > 40%% of %d", label, red.Schedules, full.Schedules)
					}
				}
			}
		}
	}
}

// TestReducedEquivalenceTimeouts extends the equivalence contract to
// timing exploration: with ExploreTimeouts on, the reduced search must
// find the same bug set as the full timing search on the timer-using
// programs — including the lost-wakeup micro-program whose bug is
// *only* reachable through an idle (time-warp) decision. This is the
// regression net for the timing pieces of the reduction layer: DPOR
// never prunes idle branches, and the state hash folds sleep and idle
// decision positions (a sleeper's deadline is a function of the step
// it slept at, so equal event chains do not imply equal timing
// futures).
func TestReducedEquivalenceTimeouts(t *testing.T) {
	lostWakeup := func(ct core.T) {
		mu := ct.NewMutex("mu")
		cv := ct.NewCond("cv", mu)
		consumer := ct.Go("consumer", func(wt core.T) {
			mu.Lock(wt)
			cv.Wait(wt) // no predicate: wakeup lost if signal fires early
			mu.Unlock(wt)
		})
		ct.Sleep(1_000_000)
		mu.Lock(ct)
		cv.Signal(ct)
		mu.Unlock(ct)
		consumer.Join(ct)
	}
	bodies := map[string]func(core.T){"micro-lostwakeup": lostWakeup}
	for _, name := range []string{"lostnotify", "sleepsync"} {
		prog, err := repository.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		bodies[name] = prog.BodyWith(smallParams[name])
	}
	for name, body := range bodies {
		full := Explore(Options{MaxSchedules: 100000, MaxSteps: 5000, ExploreTimeouts: true, Workers: 1}, body)
		if full.Err != nil {
			t.Fatalf("%s: %v", name, full.Err)
		}
		if !full.Exhausted {
			t.Logf("%s: timing tree exceeds budget; skipping", name)
			continue
		}
		fullBugs := bugKeys(full)
		for _, mode := range reducedModes {
			for _, workers := range []int{1, 8} {
				opts := Options{MaxSchedules: 100000, MaxSteps: 5000, ExploreTimeouts: true, Workers: workers}
				mode.set(&opts)
				red := Explore(opts, body)
				label := fmt.Sprintf("%s/%s/workers=%d", name, mode.name, workers)
				if red.Err != nil {
					t.Fatalf("%s: %v", label, red.Err)
				}
				if !red.Exhausted {
					t.Errorf("%s: reduced timing search did not exhaust (%d schedules)", label, red.Schedules)
					continue
				}
				if rb := bugKeys(red); !reflect.DeepEqual(rb, fullBugs) {
					t.Errorf("%s: bug sets differ\n  full:    %v\n  reduced: %v", label, fullBugs, rb)
				}
			}
		}
		if len(fullBugs) == 0 && name == "micro-lostwakeup" {
			t.Error("micro-lostwakeup: full timing search found no bug; the fixture lost its point")
		}
	}
}

// opSpec is one micro-operation for the commutativity oracle: the
// footprint the reduction layer sees, plus the thread body performing
// it (lock specs follow the acquire with a release so runs terminate).
type opSpec struct {
	name string
	fp   func() core.Footprint
	body func(t core.T, objs *oracleObjs)
}

type oracleObjs struct {
	x, y   core.IntVar
	m, m2  core.Mutex
	c1, c2 core.Chan
	wg     core.WaitGroup
	shared core.T
}

var oracleOps = []opSpec{
	{"read-x", func() core.Footprint { return core.Footprint{Op: core.OpRead, Obj: core.InternName("x")} },
		func(t core.T, o *oracleObjs) { o.x.Load(t) }},
	{"write-x", func() core.Footprint { return core.Footprint{Op: core.OpWrite, Obj: core.InternName("x")} },
		func(t core.T, o *oracleObjs) { o.x.Store(t, 7) }},
	{"read-y", func() core.Footprint { return core.Footprint{Op: core.OpRead, Obj: core.InternName("y")} },
		func(t core.T, o *oracleObjs) { o.y.Load(t) }},
	{"write-y", func() core.Footprint { return core.Footprint{Op: core.OpWrite, Obj: core.InternName("y")} },
		func(t core.T, o *oracleObjs) { o.y.Store(t, 9) }},
	{"lock-m", func() core.Footprint { return core.Footprint{Op: core.OpLock, Obj: core.InternName("m")} },
		func(t core.T, o *oracleObjs) { o.m.Lock(t); o.m.Unlock(t) }},
	{"lock-m2", func() core.Footprint { return core.Footprint{Op: core.OpLock, Obj: core.InternName("m2")} },
		func(t core.T, o *oracleObjs) { o.m2.Lock(t); o.m2.Unlock(t) }},
	{"yield", func() core.Footprint { return core.Footprint{Op: core.OpYield} },
		func(t core.T, o *oracleObjs) { t.Yield() }},
	// Channel and waitgroup micro-ops: c1 starts with two buffered
	// values so a receive never blocks, both channels have spare
	// capacity so a send never blocks, and the waitgroup counter starts
	// at zero so a lone Wait returns immediately.
	{"send-c1", func() core.Footprint { return core.Footprint{Op: core.OpChanSend, Obj: core.InternName("c1")} },
		func(t core.T, o *oracleObjs) { o.c1.Send(t, 5) }},
	{"recv-c1", func() core.Footprint { return core.Footprint{Op: core.OpChanRecv, Obj: core.InternName("c1")} },
		func(t core.T, o *oracleObjs) { o.c1.Recv(t) }},
	{"send-c2", func() core.Footprint { return core.Footprint{Op: core.OpChanSend, Obj: core.InternName("c2")} },
		func(t core.T, o *oracleObjs) { o.c2.Send(t, 6) }},
	{"close-c2", func() core.Footprint { return core.Footprint{Op: core.OpChanClose, Obj: core.InternName("c2")} },
		func(t core.T, o *oracleObjs) { o.c2.Close(t) }},
	{"wgadd", func() core.Footprint { return core.Footprint{Op: core.OpWGAdd, Obj: core.InternName("wg")} },
		func(t core.T, o *oracleObjs) { o.wg.Add(t, 1) }},
	{"wgwait", func() core.Footprint { return core.Footprint{Op: core.OpWGWait, Obj: core.InternName("wg")} },
		func(t core.T, o *oracleObjs) { o.wg.Wait(t) }},
	{"select-c1", func() core.Footprint { return core.Footprint{Op: core.OpSelect} },
		func(t core.T, o *oracleObjs) { t.Select([]core.SelectCase{{Ch: o.c1}}) }},
}

// oracleOutcome executes the two-thread micro-program with thread
// "a"'s first operation and thread "b"'s first operation scheduled
// adjacently in the given order, then reports the observable result:
// verdict, failure, and the final shared state.
func oracleOutcome(t *testing.T, a, b opSpec, first, second core.ThreadID) string {
	t.Helper()
	body := func(ct core.T) {
		objs := &oracleObjs{
			x:  ct.NewInt("x", 1),
			y:  ct.NewInt("y", 2),
			m:  ct.NewMutex("m"),
			m2: ct.NewMutex("m2"),
			c1: ct.NewChan("c1", 4),
			c2: ct.NewChan("c2", 4),
			wg: ct.NewWaitGroup("wg"),
		}
		objs.c1.Send(ct, 1)
		objs.c1.Send(ct, 2)
		ha := ct.Go("a", func(wt core.T) { a.body(wt, objs) })
		hb := ct.Go("b", func(wt core.T) { b.body(wt, objs) })
		ha.Join(ct)
		hb.Join(ct)
		ct.Outcome("x=%d y=%d", objs.x.Load(ct), objs.y.Load(ct))
	}
	// Decision structure: main's kickoff, the two c1 pre-fill sends and
	// two fork executions, then starting each child parks it at its
	// first operation; the next two picks execute the two target
	// operations in the chosen order. The nonpreemptive fallback
	// finishes the run deterministically.
	decisions := []core.ThreadID{0, 0, 0, 0, 0, 1, 2, first, second}
	res := sched.Run(sched.Config{Strategy: &sched.FixedSchedule{Decisions: decisions}}, body)
	if res.Diverged {
		t.Fatalf("oracle schedule diverged for %s/%s", a.name, b.name)
	}
	out := res.Verdict.String() + "|" + res.Outcome + "|" + res.DeadlockInfo
	if res.Failure != nil {
		out += "|" + res.Failure.Msg
	}
	return out
}

// TestCommutesOracle checks the independence relation against a
// brute-force oracle: for every pair of micro-operations, execute the
// pair adjacently in both orders from the same state; if Commutes
// claims independence, the observable results must be identical. The
// explicit table rows pin the relation's intended shape (the
// conservative direction — dependent but actually commuting, like two
// acquires of different-phase locks — is allowed and untested).
func TestCommutesOracle(t *testing.T) {
	for _, a := range oracleOps {
		for _, b := range oracleOps {
			commutes := a.fp().Commutes(b.fp())
			o1 := oracleOutcome(t, a, b, 1, 2)
			o2 := oracleOutcome(t, a, b, 2, 1)
			if commutes && o1 != o2 {
				t.Errorf("Commutes(%s,%s)=true but swapping changes the outcome:\n  a-first: %s\n  b-first: %s",
					a.name, b.name, o1, o2)
			}
		}
	}

	// The intended shape, row by row.
	fp := func(op core.Op, name string) core.Footprint {
		return core.Footprint{Op: op, Obj: core.InternName(name)}
	}
	table := []struct {
		a, b core.Footprint
		want bool
	}{
		{fp(core.OpRead, "x"), fp(core.OpRead, "x"), true},    // read/read same var
		{fp(core.OpRead, "x"), fp(core.OpWrite, "x"), false},  // read/write same var
		{fp(core.OpWrite, "x"), fp(core.OpWrite, "x"), false}, // write/write same var
		{fp(core.OpRead, "x"), fp(core.OpWrite, "y"), true},   // disjoint vars
		{fp(core.OpWrite, "x"), fp(core.OpWrite, "y"), true},  // disjoint writes
		{fp(core.OpLock, "m"), fp(core.OpLock, "m"), false},   // lock/lock same lock
		{fp(core.OpLock, "m"), fp(core.OpUnlock, "m"), false}, // acquire/release same lock
		{fp(core.OpLock, "m"), fp(core.OpLock, "n"), true},    // disjoint locks
		{fp(core.OpSignal, "c"), fp(core.OpWait, "c"), false}, // notify/wait same cond
		{fp(core.OpSignal, "c"), fp(core.OpWait, "d"), true},  // disjoint conds
		{fp(core.OpFork, "w"), fp(core.OpRead, "x"), false},   // fork vs anything
		{fp(core.OpJoin, "w"), fp(core.OpWrite, "x"), false},  // join vs anything
		{fp(core.OpYield, ""), fp(core.OpWrite, "x"), true},   // yield vs anything
		{core.Footprint{}, fp(core.OpRead, "x"), false},       // unknown op conservative
		{fp(core.OpRead, ""), fp(core.OpWrite, ""), false},    // unnamed objects alias
		// Channel and waitgroup operations (the rewrite layer's ops).
		{fp(core.OpChanSend, "c1"), fp(core.OpChanRecv, "c2"), true},  // different channels commute
		{fp(core.OpChanSend, "c1"), fp(core.OpChanSend, "c2"), true},  // disjoint sends
		{fp(core.OpChanSend, "c1"), fp(core.OpChanRecv, "c1"), false}, // same channel conservative
		{fp(core.OpChanSend, "c1"), fp(core.OpChanSend, "c1"), false}, // same-channel sends
		{fp(core.OpChanClose, "c1"), fp(core.OpChanRecv, "c1"), false},
		{fp(core.OpChanSend, "c1"), fp(core.OpLock, "m"), true}, // chan vs unrelated lock
		{fp(core.OpWGAdd, "wg"), fp(core.OpWGWait, "wg"), false},
		{fp(core.OpWGAdd, "wg"), fp(core.OpWGAdd, "wg2"), true},
		{fp(core.OpWGWait, "wg"), fp(core.OpRead, "x"), true},
		// Select names at most one of its channels, so it is dependent
		// with everything.
		{core.Footprint{Op: core.OpSelect}, fp(core.OpRead, "x"), false},
		{core.Footprint{Op: core.OpSelect, Obj: core.InternName("c1")}, fp(core.OpChanSend, "c2"), false},
	}
	for _, row := range table {
		if got := row.a.Commutes(row.b); got != row.want {
			t.Errorf("Commutes(%v,%v) = %v, want %v", row.a, row.b, got, row.want)
		}
		if got := row.b.Commutes(row.a); got != row.want {
			t.Errorf("Commutes(%v,%v) = %v, want %v (symmetry)", row.b, row.a, got, row.want)
		}
	}
}

// TestReductionStats pins that the counters move: DPOR prunes and
// backtracks on a racy program, and the state cache registers hits.
func TestReductionStats(t *testing.T) {
	prog, err := repository.Get("account")
	if err != nil {
		t.Fatal(err)
	}
	body := prog.BodyWith(smallParams["account"])

	por := Explore(Options{MaxSchedules: 200000, DPOR: true, Workers: 1}, body)
	if por.Err != nil || !por.Exhausted {
		t.Fatalf("por: err=%v exhausted=%v", por.Err, por.Exhausted)
	}
	if por.Stats.PORPruned == 0 || por.Stats.Backtracks == 0 {
		t.Errorf("DPOR ran without pruning or backtracking: %+v", por.Stats)
	}

	cache := Explore(Options{MaxSchedules: 200000, StateCache: true, Workers: 1}, body)
	if cache.Err != nil || !cache.Exhausted {
		t.Fatalf("cache: err=%v exhausted=%v", cache.Err, cache.Exhausted)
	}
	if cache.Stats.StateHits == 0 {
		t.Errorf("state cache registered no hits: %+v", cache.Stats)
	}
	if cache.Schedules >= 2728 { // unreduced golden count for account
		t.Errorf("state cache did not reduce account: %d schedules", cache.Schedules)
	}
}

// TestReducedDeterministicSerial: Workers: 1 reduced search is
// bit-for-bit reproducible (schedule counts, stats, bug indices).
func TestReducedDeterministicSerial(t *testing.T) {
	for _, name := range smallPrograms {
		prog, err := repository.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		body := prog.BodyWith(smallParams[name])
		opts := Options{MaxSchedules: 200000, DPOR: true, StateCache: true, Workers: 1}
		a := Explore(opts, body)
		b := Explore(opts, body)
		if a.Err != nil || b.Err != nil {
			t.Fatalf("%s: errs %v %v", name, a.Err, b.Err)
		}
		if a.Schedules != b.Schedules || a.Stats != b.Stats || !reflect.DeepEqual(a.Outcomes, b.Outcomes) {
			t.Errorf("%s: reduced serial search not deterministic:\n  %d %+v\n  %d %+v",
				name, a.Schedules, a.Stats, b.Schedules, b.Stats)
		}
		if len(a.Bugs) != len(b.Bugs) {
			t.Fatalf("%s: bug counts differ: %d vs %d", name, len(a.Bugs), len(b.Bugs))
		}
		for i := range a.Bugs {
			if a.Bugs[i].Index != b.Bugs[i].Index {
				t.Errorf("%s: bug %d at index %d vs %d", name, i, a.Bugs[i].Index, b.Bugs[i].Index)
			}
		}
	}
}
