package explore

import (
	"fmt"
	"reflect"
	"testing"

	"mtbench/internal/repository"
)

func mustProg(t testing.TB, name string) *repository.Program {
	t.Helper()
	prog, err := repository.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// boundedModes are the bounding configurations the equivalence
// contract pins, alone and composed with the reduction layer. Bound 2
// is the campaign default (campaign.DefaultVariableBound /
// DefaultThreadBound); this test is why those defaults are safe for
// the gate programs.
var boundedModes = []struct {
	name string
	set  func(*Options)
}{
	{"vb2", func(o *Options) { o.VariableBound = Bound(2) }},
	{"tb2", func(o *Options) { o.ThreadBound = Bound(2) }},
	{"vb2+tb2", func(o *Options) { o.VariableBound = Bound(2); o.ThreadBound = Bound(2) }},
	{"vb2+dpor+cache", func(o *Options) { o.VariableBound = Bound(2); o.DPOR = true; o.StateCache = true }},
	{"tb2+dpor+cache", func(o *Options) { o.ThreadBound = Bound(2); o.DPOR = true; o.StateCache = true }},
}

// TestBoundedEquivalence pins the bounding portfolio's gate contract:
// on the two benchmark gate programs, variable bounding and thread
// bounding at bound 2 — alone, together, and composed with DPOR and
// the state cache, at any worker count — exhaust their bounded trees
// with exactly the bug set full exploration finds, in strictly fewer
// schedules, and report the cut through the vb_pruned/tb_pruned
// counters. Unlike TestReducedEquivalence this is NOT a soundness
// theorem — bounding deliberately cuts schedules a bug could hide in —
// but an empirical property of the gate programs that the CI
// bounded-smoke job pins through cmd/explore; a new gate program joins
// this list only after its bugs are shown to sit inside the bounded
// space.
func TestBoundedEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("bounded exploration sweep in -short mode")
	}
	for _, name := range []string{"philosophers", "account"} {
		prog := mustProg(t, name)
		body := prog.BodyWith(smallParams[name])
		full := Explore(Options{MaxSchedules: 200_000, Workers: 1}, body)
		if full.Err != nil {
			t.Fatalf("%s: %v", name, full.Err)
		}
		if !full.Exhausted {
			t.Fatalf("%s: full tree did not exhaust (%d schedules)", name, full.Schedules)
		}
		fullBugs := bugKeys(full)

		for _, mode := range boundedModes {
			for _, workers := range []int{1, 8} {
				opts := Options{MaxSchedules: 200_000, Workers: workers}
				mode.set(&opts)
				bd := Explore(opts, body)
				label := fmt.Sprintf("%s/%s/workers=%d", name, mode.name, workers)
				if bd.Err != nil {
					t.Fatalf("%s: %v", label, bd.Err)
				}
				if !bd.Exhausted {
					t.Errorf("%s: bounded search did not exhaust (%d schedules)", label, bd.Schedules)
					continue
				}
				if bb := bugKeys(bd); !reflect.DeepEqual(bb, fullBugs) {
					t.Errorf("%s: bug sets differ\n  full:    %v\n  bounded: %v", label, fullBugs, bb)
				}
				if bd.Schedules >= full.Schedules {
					t.Errorf("%s: bound did not shrink the tree: %d vs full %d", label, bd.Schedules, full.Schedules)
				}
				if pruned := bd.Stats.VBPruned + bd.Stats.TBPruned; pruned <= 0 {
					t.Errorf("%s: no pruned options reported (vb=%d tb=%d)",
						label, bd.Stats.VBPruned, bd.Stats.TBPruned)
				}
				if workers == 1 {
					t.Logf("%s: %d -> %d schedules (%.1f%%) vb_pruned=%d tb_pruned=%d",
						label, full.Schedules, bd.Schedules,
						100*float64(bd.Schedules)/float64(full.Schedules),
						bd.Stats.VBPruned, bd.Stats.TBPruned)
				}
			}
		}
	}
}

// TestBoundStatsInert pins that the bound counters stay zero when no
// bound is set — Stats.VBPruned/TBPruned are pinned JSON fields
// (vb_pruned/tb_pruned in cmd/explore -json), so an unbounded search
// reporting nonzero cuts would be a bookkeeping bug.
func TestBoundStatsInert(t *testing.T) {
	prog := mustProg(t, "account")
	res := Explore(Options{MaxSchedules: 200_000, Workers: 1}, prog.BodyWith(smallParams["account"]))
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Stats.VBPruned != 0 || res.Stats.TBPruned != 0 {
		t.Errorf("unbounded search reported bound cuts: vb=%d tb=%d",
			res.Stats.VBPruned, res.Stats.TBPruned)
	}
}
