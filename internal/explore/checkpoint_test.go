package explore

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"
	"time"

	"mtbench/internal/repository"
)

// TestCheckpointedEquivalence pins the frontier-positioning contract
// over the whole program repository. Serially the contract is exact:
// checkpointed exploration (DPOR + state cache + branch snapshots +
// parked runners) must visit exactly the tree the coast-mode reduced
// search visits — same schedule count, same exhaustion, same
// deduplicated bug set, same novel-step total — because positioning
// only changes how a run reaches its decision point, never which
// decisions the DFS enumerates. The one intended serial difference is
// the replay tax: the checkpointed search must never replay more steps
// than coast mode, and on the benchmark gate program it must replay
// strictly fewer while reporting snapshot fast-forwards in the stats
// (and, with the always-park threshold, parked runs in the outcome
// histogram).
//
// With Workers: 8 the per-worker state caches see different state
// sequences depending on shard-donation timing — which parking shifts,
// exactly as coast-mode donation timing already varies — so schedule
// counts are not comparable across modes (TestReducedEquivalence pins
// the parallel bound against the full tree instead). The parallel
// checkpointed contract is the soundness half: when the search
// exhausts, it finds exactly the serial bug set, and its outcome
// histogram accounts for every schedule.
//
// At every worker count the two conservation laws must hold: every
// schedule is positioned exactly once (hits + misses == schedules) and
// every scheduler step is attributed exactly once (replayed + novel +
// restored == total).
func TestCheckpointedEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-repository exploration sweep in -short mode")
	}
	budget, maxSteps := 30000, int64(5000)
	if raceEnabled {
		budget = 3000
	}
	for _, prog := range repository.All() {
		body := prog.BodyWith(smallParams[prog.Name])
		base := Explore(Options{
			MaxSchedules: budget, MaxSteps: maxSteps, Workers: 1,
			DPOR: true, StateCache: true,
		}, body)
		if base.Err != nil {
			t.Fatalf("%s: %v", prog.Name, base.Err)
		}
		baseBugs := bugKeys(base)
		for _, workers := range []int{1, 8} {
			ck := Explore(Options{
				MaxSchedules: budget, MaxSteps: maxSteps, Workers: workers,
				DPOR: true, StateCache: true, Checkpoints: 4,
			}, body)
			label := fmt.Sprintf("%s/checkpoints=4/workers=%d", prog.Name, workers)
			if ck.Err != nil {
				t.Fatalf("%s: %v", label, ck.Err)
			}
			total := 0
			for _, n := range ck.Outcomes {
				total += n
			}
			if total != ck.Schedules {
				t.Errorf("%s: outcome histogram counts %d runs over %d schedules", label, total, ck.Schedules)
			}
			assertConservation(t, label, ck)
			if workers > 1 {
				if base.Exhausted && ck.Exhausted {
					if got := bugKeys(ck); !reflect.DeepEqual(got, baseBugs) {
						t.Errorf("%s: bug sets differ\n  coast:        %v\n  checkpointed: %v", label, baseBugs, got)
					}
				}
				continue
			}
			if ck.Schedules != base.Schedules || ck.Exhausted != base.Exhausted {
				t.Errorf("%s: tree shape changed: %d schedules (exhausted=%v) vs coast %d (%v)",
					label, ck.Schedules, ck.Exhausted, base.Schedules, base.Exhausted)
			}
			if got := bugKeys(ck); !reflect.DeepEqual(got, baseBugs) {
				t.Errorf("%s: bug sets differ\n  coast:        %v\n  checkpointed: %v", label, baseBugs, got)
			}
			if ck.Stats.ReplayedSteps > base.Stats.ReplayedSteps {
				t.Errorf("%s: checkpointing raised the replay tax: %d vs coast %d",
					label, ck.Stats.ReplayedSteps, base.Stats.ReplayedSteps)
			}
			if ck.Stats.NovelSteps != base.Stats.NovelSteps {
				t.Errorf("%s: novel steps differ: %d vs coast %d",
					label, ck.Stats.NovelSteps, base.Stats.NovelSteps)
			}
			if prog.Name == "philosophers" {
				if ck.Stats.ReplayedSteps >= base.Stats.ReplayedSteps {
					t.Errorf("%s: expected strictly fewer replayed steps than coast mode: %d vs %d",
						label, ck.Stats.ReplayedSteps, base.Stats.ReplayedSteps)
				}
				if ck.Stats.SnapshotRestores == 0 {
					t.Errorf("%s: no snapshot fast-forwards recorded; stats: %+v", label, ck.Stats)
				}
			}
		}

		// Always-park variant: ParkTailThreshold < 0 restores the
		// park-every-cut disposal, which must still leave the tree shape,
		// bug set and novel-step total untouched while putting parked
		// runs back in the histogram.
		ap := Explore(Options{
			MaxSchedules: budget, MaxSteps: maxSteps, Workers: 1,
			DPOR: true, StateCache: true, Checkpoints: 4, ParkTailThreshold: -1,
		}, body)
		label := prog.Name + "/checkpoints=4/always-park"
		if ap.Err != nil {
			t.Fatalf("%s: %v", label, ap.Err)
		}
		assertConservation(t, label, ap)
		if ap.Schedules != base.Schedules || ap.Exhausted != base.Exhausted {
			t.Errorf("%s: tree shape changed: %d schedules (exhausted=%v) vs coast %d (%v)",
				label, ap.Schedules, ap.Exhausted, base.Schedules, base.Exhausted)
		}
		if got := bugKeys(ap); !reflect.DeepEqual(got, baseBugs) {
			t.Errorf("%s: bug sets differ\n  coast:        %v\n  checkpointed: %v", label, baseBugs, got)
		}
		if ap.Stats.NovelSteps != base.Stats.NovelSteps {
			t.Errorf("%s: novel steps differ: %d vs coast %d", label, ap.Stats.NovelSteps, base.Stats.NovelSteps)
		}
		if prog.Name == "philosophers" && ap.Outcomes["parked:"] == 0 {
			t.Errorf("%s: no parked runs recorded; outcomes: %v", label, ap.Outcomes)
		}
	}
}

// assertConservation checks the two positioning conservation laws on
// one exploration result: every schedule positioned exactly once, and
// every scheduler step attributed exactly once.
func assertConservation(t *testing.T, label string, res *Result) {
	t.Helper()
	if got := res.Stats.CheckpointHits + res.Stats.CheckpointMisses; got != res.Schedules {
		t.Errorf("%s: positioning law broken: hits %d + misses %d = %d over %d schedules",
			label, res.Stats.CheckpointHits, res.Stats.CheckpointMisses, got, res.Schedules)
	}
	if got := res.Stats.ReplayedSteps + res.Stats.NovelSteps + res.Stats.RestoredSteps; got != res.Stats.TotalSteps {
		t.Errorf("%s: step law broken: replayed %d + novel %d + restored %d = %d, total %d",
			label, res.Stats.ReplayedSteps, res.Stats.NovelSteps, res.Stats.RestoredSteps, got, res.Stats.TotalSteps)
	}
}

// TestCheckpointConservation pins the two conservation laws repo-wide
// across every exploration mode, checkpointed or not: every schedule
// is positioned exactly once (checkpoint_hits + checkpoint_misses ==
// schedules — all misses when positioning is off), and every scheduler
// step is attributed exactly once (replayed + novel + restored ==
// total). The laws are what make the counters trustworthy: a counter
// that can drift from the ground truth silently is worse than no
// counter.
func TestCheckpointConservation(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-repository exploration sweep in -short mode")
	}
	budget := 2000
	if raceEnabled {
		budget = 300
	}
	for _, prog := range repository.All() {
		body := prog.BodyWith(smallParams[prog.Name])
		for _, mode := range leakModes {
			for _, workers := range []int{1, 8} {
				opts := Options{MaxSchedules: budget, MaxSteps: 5000, Workers: workers}
				mode.set(&opts)
				res := Explore(opts, body)
				label := fmt.Sprintf("%s/%s/workers=%d", prog.Name, mode.name, workers)
				if res.Err != nil {
					t.Fatalf("%s: %v", label, res.Err)
				}
				assertConservation(t, label, res)
				if !opts.StateCache && res.Stats.CheckpointHits != 0 {
					t.Errorf("%s: %d checkpoint hits without a state cache", label, res.Stats.CheckpointHits)
				}
			}
		}
	}
}

// leakModes is the mode matrix the goroutine-leak sweep drives: every
// reduction configuration, with and without parked-runner checkpoints
// where the state cache permits them, at both worker counts.
var leakModes = []struct {
	name string
	set  func(*Options)
}{
	{"plain", func(o *Options) {}},
	{"dpor", func(o *Options) { o.DPOR = true }},
	{"cache", func(o *Options) { o.StateCache = true }},
	{"dpor+cache", func(o *Options) { o.DPOR = true; o.StateCache = true }},
	{"dpor+cache+ckpt", func(o *Options) { o.DPOR = true; o.StateCache = true; o.Checkpoints = 2 }},
	{"timeouts+ckpt", func(o *Options) {
		o.DPOR = true
		o.StateCache = true
		o.Checkpoints = 2
		o.ExploreTimeouts = true
	}},
}

// TestExploreNoGoroutineLeak sweeps every explore mode over the whole
// repository twice and checks the process goroutine count returns to
// its post-warmup baseline. The first sweep is warmup: worker kits,
// pooled runners and their parked virtual threads are retained by
// design (that is what makes repeated exploration cheap), and the
// retained population reaches steady state once every program has run
// in every mode. The second sweep must then add nothing — in
// particular, every runner parked as a checkpoint and later evicted or
// abandoned at shard end must have returned its threads to its pool
// rather than leaking them.
func TestExploreNoGoroutineLeak(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-repository exploration sweep in -short mode")
	}
	sweep := func() {
		for _, prog := range repository.All() {
			body := prog.BodyWith(smallParams[prog.Name])
			for _, mode := range leakModes {
				for _, workers := range []int{1, 4} {
					opts := Options{MaxSchedules: 300, MaxSteps: 5000, Workers: workers}
					mode.set(&opts)
					if res := Explore(opts, body); res.Err != nil {
						t.Fatalf("%s/%s/workers=%d: %v", prog.Name, mode.name, workers, res.Err)
					}
				}
			}
		}
	}

	sweep()
	runtime.GC()
	time.Sleep(10 * time.Millisecond)
	baseline := runtime.NumGoroutine()

	sweep()

	// Worker goroutines exit asynchronously after Explore returns;
	// give them a bounded moment to drain before declaring a leak.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Errorf("goroutines leaked across explore sweep: baseline %d, now %d", baseline, runtime.NumGoroutine())
}

// TestReducedAllocs is the allocation gate on the reduced hot path:
// serial DPOR + state-cache exploration of the benchmark gate program
// must stay under a hard per-schedule allocation ceiling. The program
// body itself owns ~13 allocations per run (closures and result
// slices the repository programs legitimately build), so the ceiling
// of 100 leaves room for growth while still catching any regression
// that reintroduces per-run construction of runners, caches, node
// records or event machinery (each of which costs tens to hundreds of
// allocations per schedule on its own).
func TestReducedAllocs(t *testing.T) {
	body, err := repository.Get("philosophers")
	if err != nil {
		t.Fatal(err)
	}
	prog := body.BodyWith(smallParams["philosophers"])
	opts := Options{MaxSchedules: 30000, MaxSteps: 5000, Workers: 1, DPOR: true, StateCache: true}

	// Warm the kit pool: the first exploration constructs the runner,
	// caches and node pool that later explorations reuse.
	warm := Explore(opts, prog)
	if warm.Err != nil {
		t.Fatal(warm.Err)
	}
	if warm.Schedules == 0 {
		t.Fatal("no schedules executed")
	}

	schedules := warm.Schedules
	allocs := testing.AllocsPerRun(5, func() {
		res := Explore(opts, prog)
		if res.Schedules != schedules {
			t.Fatalf("schedule count drifted: %d vs %d", res.Schedules, schedules)
		}
	})
	perSchedule := allocs / float64(schedules)
	t.Logf("reduced explore: %.0f allocs over %d schedules = %.1f allocs/schedule", allocs, schedules, perSchedule)
	if perSchedule > 100 {
		t.Errorf("allocation gate: %.1f allocs/schedule > 100 (total %.0f over %d schedules)", perSchedule, allocs, schedules)
	}
}
