// Package profiling is the shared -cpuprofile/-memprofile plumbing for
// the CLI tools, so every throughput-bound command (explore, fuzz,
// campaign, bench) can produce the pprof files that future performance
// work is driven by. It wraps runtime/pprof the same way `go test`
// does: CPU profiling runs for the whole command, and the heap profile
// is written at shutdown after a final GC.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins the profiles requested by the (possibly empty) file
// paths and returns a stop function to defer; the stop function
// finishes the CPU profile and writes the heap profile. Errors opening
// or starting a profile are returned immediately and leave nothing
// running.
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profiling: start cpu profile: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "profiling:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the final live-heap numbers
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "profiling: write heap profile:", err)
			}
		}
	}, nil
}
