package experiment

import (
	"time"

	"mtbench/internal/core"
	"mtbench/internal/noise"
	"mtbench/internal/repository"
	"mtbench/internal/sched"
)

// E1 — noise-maker comparison (§2.2: "Two noise makers can be compared
// to each other with regard to the performance overhead and the
// likelihood of uncovering bugs").

// NamedHeuristic pairs a display name with a fresh-heuristic factory
// (adaptive heuristics carry cross-run state, so each campaign gets
// its own instance).
type NamedHeuristic struct {
	Name string
	New  func() noise.Heuristic
}

// StockHeuristics returns the standard comparison set.
func StockHeuristics() []NamedHeuristic {
	return []NamedHeuristic{
		{Name: "none", New: func() noise.Heuristic { return noise.None() }},
		{Name: "yield-p0.1", New: func() noise.Heuristic { return noise.NewBernoulli(0.1, noise.KindYield) }},
		{Name: "yield-p0.4", New: func() noise.Heuristic { return noise.NewBernoulli(0.4, noise.KindYield) }},
		{Name: "sleep-p0.4", New: func() noise.Heuristic { return noise.NewBernoulli(0.4, noise.KindSleep) }},
		{Name: "sharedvar", New: func() noise.Heuristic { return noise.SharedVarNoise(0.4) }},
		{Name: "sync", New: func() noise.Heuristic { return noise.SyncNoise(0.4) }},
		{Name: "statistical", New: func() noise.Heuristic { return noise.NewStatistical(0.6, 0.7) }},
		{Name: "covdirected", New: func() noise.Heuristic { return noise.NewCoverageDirected(0.8) }},
	}
}

// NoiseConfig parameterizes E1.
type NoiseConfig struct {
	Programs   []string // default: a representative spread
	Heuristics []NamedHeuristic
	Runs       int // seeds per (program, heuristic) cell
}

// DefaultNoisePrograms is the E1 program spread: races, atomicity,
// deadlock, notify and timing bugs plus a correct control.
var DefaultNoisePrograms = []string{
	"account", "checkthenact", "philosophers", "workqueue",
	"sleepsync", "lostnotify", "lockedcounter",
}

// Noise runs E1 and returns its table: per program × heuristic, the
// bug-detection probability, mean schedule length, and mean run time.
// The "baseline" row per program is the deterministic run-to-block
// scheduler — the paper's unit-test scheduler that misses everything.
func Noise(cfg NoiseConfig) ([]*Table, error) {
	if len(cfg.Programs) == 0 {
		cfg.Programs = DefaultNoisePrograms
	}
	if len(cfg.Heuristics) == 0 {
		cfg.Heuristics = StockHeuristics()
	}
	if cfg.Runs <= 0 {
		cfg.Runs = 50
	}

	t := &Table{
		ID:      "E1",
		Title:   "noise makers: detection probability and overhead",
		Columns: []string{"program", "heuristic", "runs", "detected", "rate", "avg_steps", "avg_us"},
	}
	t.Note("baseline = deterministic run-to-block scheduler (no noise, no dispatch randomness)")
	t.Note("all heuristics run over random-dispatch run-to-block (the live-scheduler model)")

	for _, name := range cfg.Programs {
		prog, err := repository.Get(name)
		if err != nil {
			return nil, err
		}
		body := prog.BodyWith(nil)

		// Deterministic baseline.
		det, steps, dur := runNoiseCampaign(cfg.Runs, body, func(seed int64) sched.Strategy {
			return sched.Nonpreemptive()
		})
		t.AddRow(name, "baseline", itoa(cfg.Runs), itoa(det), pct(det, cfg.Runs), i64(steps), i64(dur))

		for _, h := range cfg.Heuristics {
			heur := h.New() // one instance per campaign: adaptive state accumulates
			det, steps, dur := runNoiseCampaign(cfg.Runs, body, func(seed int64) sched.Strategy {
				return noise.NewStrategy(nil, heur, seed)
			})
			t.AddRow(name, h.Name, itoa(cfg.Runs), itoa(det), pct(det, cfg.Runs), i64(steps), i64(dur))
		}
	}
	return []*Table{t}, nil
}

// runNoiseCampaign runs the body under per-seed strategies and aggregates
// detection count, mean steps, and mean wall time in microseconds.
func runNoiseCampaign(runs int, body func(core.T), mk func(seed int64) sched.Strategy) (detected int, avgSteps, avgUs int64) {
	var steps, dur int64
	for seed := int64(0); seed < int64(runs); seed++ {
		res := sched.Run(sched.Config{
			Strategy: mk(seed),
			Seed:     seed,
			MaxSteps: 500_000,
		}, body)
		if res.Verdict.Bug() {
			detected++
		}
		steps += res.Steps
		dur += int64(res.Elapsed / time.Microsecond)
	}
	n := int64(runs)
	return detected, steps / n, dur / n
}
