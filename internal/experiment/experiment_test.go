package experiment

import (
	"bytes"
	"encoding/json"
	"strconv"
	"strings"
	"testing"

	"mtbench/internal/campaign"
)

// cell looks up a table cell by row predicate and column name.
func cell(t *testing.T, tbl *Table, match func(row []string) bool, col string) string {
	t.Helper()
	ci := -1
	for i, c := range tbl.Columns {
		if c == col {
			ci = i
		}
	}
	if ci < 0 {
		t.Fatalf("table %s has no column %q", tbl.ID, col)
	}
	for _, row := range tbl.Rows {
		if match(row) {
			return row[ci]
		}
	}
	t.Fatalf("table %s has no matching row", tbl.ID)
	return ""
}

func atoiCell(t *testing.T, s string) int {
	t.Helper()
	n, err := strconv.Atoi(s)
	if err != nil {
		t.Fatalf("cell %q not an int", s)
	}
	return n
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{ID: "X", Title: "demo", Columns: []string{"a", "b"}}
	tbl.AddRow("1", "hello,world")
	tbl.Note("a note")
	var txt, csv bytes.Buffer
	if err := tbl.Render(&txt); err != nil {
		t.Fatal(err)
	}
	if err := tbl.CSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(txt.String(), "demo") || !strings.Contains(txt.String(), "note: a note") {
		t.Fatalf("text render:\n%s", txt.String())
	}
	if !strings.Contains(csv.String(), `"hello,world"`) {
		t.Fatalf("csv render:\n%s", csv.String())
	}
}

// TestTableJSON pins the machine-readable serialization external
// campaign tooling depends on: stable field names, rows as arrays,
// empty tables still valid.
func TestTableJSON(t *testing.T) {
	tbl := &Table{ID: "X", Title: "demo", Columns: []string{"a", "b"}}
	tbl.AddRow("1", "two")
	tbl.Note("a note")
	var buf bytes.Buffer
	if err := tbl.JSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got struct {
		ID      string     `json:"id"`
		Title   string     `json:"title"`
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
		Notes   []string   `json:"notes"`
	}
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if got.ID != "X" || got.Title != "demo" || len(got.Rows) != 1 || got.Rows[0][1] != "two" || len(got.Notes) != 1 {
		t.Fatalf("round trip mangled the table: %+v", got)
	}

	buf.Reset()
	empty := &Table{ID: "Y", Title: "empty", Columns: []string{"a"}}
	if err := JSONAll(&buf, []*Table{empty, tbl}); err != nil {
		t.Fatal(err)
	}
	var arr []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &arr); err != nil {
		t.Fatalf("invalid JSON array: %v\n%s", err, buf.String())
	}
	if len(arr) != 2 {
		t.Fatalf("array length = %d, want 2", len(arr))
	}
	if rows, ok := arr[0]["rows"].([]any); !ok || rows == nil {
		t.Fatalf("empty table serialized rows as %T, want empty array", arr[0]["rows"])
	}
}

// TestFuzzShape pins E11's acceptance property on a fast subset: under
// one shared budget, schedule fuzzing finds every bug noise finds —
// including on the scenario-diversity programs the stock tools were
// not tuned on.
func TestFuzzShape(t *testing.T) {
	programs := []string{"account", "statmax", "semleak", "rwupgrade", "waitholdinglock", "abastack"}
	tables, err := Fuzz(FuzzConfig{Programs: programs, Budget: 2000})
	if err != nil {
		t.Fatal(err)
	}
	tbl := tables[0]
	get := func(prog, method, col string) string {
		return cell(t, tbl, func(r []string) bool { return r[0] == prog && r[1] == method }, col)
	}
	for _, prog := range programs {
		fuzzBugs := atoiCell(t, get(prog, "fuzz", "bugs"))
		noiseBugs := atoiCell(t, get(prog, "noise", "bugs"))
		if fuzzBugs < noiseBugs {
			t.Errorf("%s: fuzz found %d bugs, noise found %d under the same budget", prog, fuzzBugs, noiseBugs)
		}
		if fuzzBugs == 0 {
			t.Errorf("%s: fuzz found nothing", prog)
		}
		if got := get(prog, "fuzz", "first_bug"); got == "-" {
			t.Errorf("%s: fuzz never hit its first bug", prog)
		}
	}
}

// TestNoiseShape pins E1's qualitative result: on the account program
// the deterministic baseline finds nothing and strong yield noise
// finds the bug often.
func TestNoiseShape(t *testing.T) {
	tables, err := Noise(NoiseConfig{
		Programs: []string{"account", "lockedcounter"},
		Runs:     30,
		Heuristics: []NamedHeuristic{
			StockHeuristics()[0], // none
			StockHeuristics()[2], // yield-p0.4
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	tbl := tables[0]
	isRow := func(prog, heur string) func([]string) bool {
		return func(row []string) bool { return row[0] == prog && row[1] == heur }
	}
	if got := atoiCell(t, cell(t, tbl, isRow("account", "baseline"), "detected")); got != 0 {
		t.Fatalf("baseline detected %d on account, want 0", got)
	}
	noisy := atoiCell(t, cell(t, tbl, isRow("account", "yield-p0.4"), "detected"))
	if noisy == 0 {
		t.Fatal("yield noise never found the account bug")
	}
	if got := atoiCell(t, cell(t, tbl, isRow("lockedcounter", "yield-p0.4"), "detected")); got != 0 {
		t.Fatalf("noise 'found' %d bugs in the correct program", got)
	}
}

// TestRaceShape pins E2: lockset false-alarms on adhocsync, hybrid
// does not, and both find the account race.
func TestRaceShape(t *testing.T) {
	tables, err := Race(RaceConfig{
		Programs: []string{"account", "adhocsync", "lockedcounter"},
		Runs:     6,
	})
	if err != nil {
		t.Fatal(err)
	}
	perProg := tables[1]
	row := func(prog string) func([]string) bool {
		return func(r []string) bool { return r[0] == prog }
	}
	if got := cell(t, perProg, row("account"), "lockset"); !strings.Contains(got, "balance") {
		t.Fatalf("lockset missed account race: %q", got)
	}
	if got := cell(t, perProg, row("account"), "hybrid"); !strings.Contains(got, "balance") {
		t.Fatalf("hybrid missed account race: %q", got)
	}
	if got := cell(t, perProg, row("adhocsync"), "lockset"); got == "-" {
		t.Fatal("lockset did not false-alarm on adhocsync")
	}
	if got := cell(t, perProg, row("adhocsync"), "hybrid"); got != "-" {
		t.Fatalf("hybrid false-alarmed on adhocsync: %q", got)
	}
	// lockset is join-blind, so the final unlocked post-join read in
	// lockedcounter is a (documented) false alarm for it; the
	// happens-before side sees the join edge, so hybrid stays silent.
	if got := cell(t, perProg, row("lockedcounter"), "lockset"); !strings.Contains(got, "count") {
		t.Fatalf("expected lockset join-blindness false alarm on lockedcounter, got %q", got)
	}
	if got := cell(t, perProg, row("lockedcounter"), "hybrid"); got != "-" {
		t.Fatalf("hybrid false-alarmed on lockedcounter: %q", got)
	}
}

// TestReplayShape pins E3: controlled replay is exact.
func TestReplayShape(t *testing.T) {
	tables, err := Replay(ReplayConfig{ControlledTrials: 10, NativeRecords: 1, NativeReplays: 1})
	if err != nil {
		t.Fatal(err)
	}
	tbl := tables[0]
	controlled := func(r []string) bool { return r[0] == "controlled" }
	if got := cell(t, tbl, controlled, "rate"); got != "100.0%" {
		t.Fatalf("controlled replay rate = %s, want 100%%", got)
	}
}

// TestCoverageShape pins E4: growth is monotone and the budget table
// spends the whole budget.
func TestCoverageShape(t *testing.T) {
	tables, err := Coverage(CoverageConfig{
		Programs: []string{"account", "boundedbuffer"},
		Runs:     6,
		Budget:   10,
	})
	if err != nil {
		t.Fatal(err)
	}
	growth := tables[0]
	for col := 1; col <= 2; col++ {
		prev := -1
		for _, row := range growth.Rows {
			v := atoiCell(t, row[col])
			if v < prev {
				t.Fatalf("coverage regressed in column %d: %d -> %d", col, prev, v)
			}
			prev = v
		}
	}
	budget := tables[2]
	total := 0
	for _, row := range budget.Rows {
		total += atoiCell(t, row[2])
	}
	if total != 10 {
		t.Fatalf("budget allocated %d, want 10", total)
	}
}

// TestExploreShape pins E5 on the smallest program: DFS finds the bug
// and bounded DFS needs no more schedules than unbounded.
func TestExploreShape(t *testing.T) {
	tables, err := Explore(ExploreConfig{Programs: []string{"statmax"}, MaxSchedules: 30000, RandomSeeds: 2000})
	if err != nil {
		t.Fatal(err)
	}
	tbl := tables[0]
	get := func(method, col string) string {
		return cell(t, tbl, func(r []string) bool { return r[0] == "statmax" && r[1] == method }, col)
	}
	if got := get("dfs", "first_bug"); got == "-" {
		t.Fatal("dfs missed the statmax bug")
	}
	if got := get("dfs-bound1", "first_bug"); got == "-" {
		t.Fatal("bound-1 dfs missed the 1-preemption statmax bug")
	}
	b1 := atoiCell(t, get("dfs-bound1", "schedules"))
	full := atoiCell(t, get("dfs", "schedules"))
	if b1 > full {
		t.Fatalf("bound-1 used more schedules (%d) than unbounded (%d)", b1, full)
	}
	if got := get("dfs-por-cache", "first_bug"); got == "-" {
		t.Fatal("reduced dfs missed the statmax bug")
	}
	reduced := atoiCell(t, get("dfs-por-cache", "schedules"))
	if reduced > full {
		t.Fatalf("reduced search used more schedules (%d) than unbounded (%d)", reduced, full)
	}
	if pruned := atoiCell(t, get("dfs-por", "pruned")); pruned == 0 {
		t.Fatal("dfs-por reports zero pruned options")
	}
}

// TestCloningShape pins E6: 1 clone never detects; detection grows.
func TestCloningShape(t *testing.T) {
	tables, err := Cloning(CloningConfig{CloneCounts: []int{1, 8}, Runs: 30})
	if err != nil {
		t.Fatal(err)
	}
	tbl := tables[0]
	one := atoiCell(t, cell(t, tbl, func(r []string) bool { return r[0] == "1" }, "noise_detect"))
	eight := atoiCell(t, cell(t, tbl, func(r []string) bool { return r[0] == "8" }, "noise_detect"))
	if one != 0 {
		t.Fatalf("single clone detected %d times", one)
	}
	if eight == 0 {
		t.Fatal("8 clones never detected the oversell")
	}
}

// TestMultioutShape pins E7: deterministic = 1 outcome, random > 1.
func TestMultioutShape(t *testing.T) {
	tables, err := Multiout(MultioutConfig{Runs: 40})
	if err != nil {
		t.Fatal(err)
	}
	tbl := tables[0]
	det := atoiCell(t, cell(t, tbl, func(r []string) bool { return r[0] == "deterministic" }, "distinct"))
	rnd := atoiCell(t, cell(t, tbl, func(r []string) bool { return r[0] == "random" }, "distinct"))
	if det != 1 {
		t.Fatalf("deterministic produced %d outcomes", det)
	}
	if rnd <= det {
		t.Fatalf("random produced %d outcomes, want > 1", rnd)
	}
}

// TestStaticShape pins E8: pruning reduces events overall and the
// account suspect hits ground truth.
func TestStaticShape(t *testing.T) {
	tables, err := Static(StaticConfig{Programs: []string{"account", "checkthenact", "lockedcounter"}})
	if err != nil {
		t.Fatal(err)
	}
	tbl := tables[0]
	if got := cell(t, tbl, func(r []string) bool { return r[0] == "account" }, "hit"); got != "yes" {
		t.Fatalf("account suspect hit = %q", got)
	}
	full := atoiCell(t, cell(t, tbl, func(r []string) bool { return r[0] == "account" }, "events_full"))
	pruned := atoiCell(t, cell(t, tbl, func(r []string) bool { return r[0] == "account" }, "events_pruned"))
	if pruned > full {
		t.Fatalf("pruned events %d > full %d", pruned, full)
	}
}

// TestTraceShape pins E9: binary beats JSONL and bug records exist.
func TestTraceShape(t *testing.T) {
	tables, err := Trace(TraceConfig{Programs: []string{"account"}, Seeds: 2})
	if err != nil {
		t.Fatal(err)
	}
	tbl := tables[0]
	row := func(r []string) bool { return r[0] == "account" }
	jb := atoiCell(t, cell(t, tbl, row, "jsonl_bytes"))
	bb := atoiCell(t, cell(t, tbl, row, "binary_bytes"))
	if bb >= jb {
		t.Fatalf("binary %d >= jsonl %d", bb, jb)
	}
	if got := atoiCell(t, cell(t, tbl, row, "bug_marked")); got == 0 {
		t.Fatal("no bug-annotated records")
	}
}

// TestTraceEvalShape pins E10: the account trace violates the lock
// discipline property, the locked counter satisfies it.
func TestTraceEvalShape(t *testing.T) {
	tables, err := TraceEval(TraceEvalConfig{Seeds: 3})
	if err != nil {
		t.Fatal(err)
	}
	tbl := tables[0]
	acc := atoiCell(t, cell(t, tbl, func(r []string) bool { return r[0] == "account" }, "ltl_violations"))
	locked := atoiCell(t, cell(t, tbl, func(r []string) bool { return r[0] == "lockedcounter" }, "ltl_violations"))
	if acc == 0 {
		t.Fatal("account lock-discipline property not violated")
	}
	if locked != 0 {
		t.Fatalf("lockedcounter property violated %d times", locked)
	}
}

// TestPipelineShape pins F1: every stage produces an artifact and the
// bug is found and replayed.
func TestPipelineShape(t *testing.T) {
	tables, err := Pipeline(PipelineConfig{Program: "account", Seeds: 300})
	if err != nil {
		t.Fatal(err)
	}
	var txt bytes.Buffer
	if err := RenderAll(&txt, tables); err != nil {
		t.Fatal(err)
	}
	out := txt.String()
	for _, want := range []string{"bug after", "verdict reproduced: fail", "lockset warned [balance]", "violations"} {
		if !strings.Contains(out, want) {
			t.Fatalf("pipeline output missing %q:\n%s", want, out)
		}
	}
}

// TestRegistryDispatch checks Runners/Get plumbing.
func TestRegistryDispatch(t *testing.T) {
	if len(Runners()) != 14 {
		t.Fatalf("runners = %d, want 14", len(Runners()))
	}
	if _, err := Get("E1"); err != nil {
		t.Fatal(err)
	}
	if _, err := Get("E99"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

// TestBoundingShape pins E13 on one program: one row per regime, the
// bounded regimes exhaust the account tree within the budget with the
// same bug count as full DFS and report a nonzero pruned-option
// count, and the randomized regimes land the bug too.
func TestBoundingShape(t *testing.T) {
	tables, err := Bounding(BoundingConfig{Programs: []string{"account"}, Budget: 3000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || tables[0].ID != "E13" {
		t.Fatalf("E13 table shape wrong: %+v", tables)
	}
	tbl := tables[0]
	regimes := []string{"dfs", "dfs-pbound2", "dfs-vb", "dfs-tb", "dfs-por-cache", "fuzz", "pct"}
	if len(tbl.Rows) != len(regimes) {
		t.Fatalf("E13 has %d rows, want one per regime (%d)", len(tbl.Rows), len(regimes))
	}
	get := func(regime, col string) string {
		return cell(t, tbl, func(r []string) bool { return r[1] == regime }, col)
	}
	for _, regime := range regimes {
		if got := get(regime, "first_bug"); got == "-" {
			t.Errorf("%s: no bug found on account", regime)
		}
		if got := atoiCell(t, get(regime, "bugs")); got != 1 {
			t.Errorf("%s: bugs = %d, want 1", regime, got)
		}
	}
	for _, regime := range []string{"dfs-vb", "dfs-tb"} {
		if got := get(regime, "exhausted"); got != "yes" {
			t.Errorf("%s: bounded tree not exhausted", regime)
		}
		if got := atoiCell(t, get(regime, "bound_pruned")); got <= 0 {
			t.Errorf("%s: bound_pruned = %d, want > 0", regime, got)
		}
	}
}

// TestCampaignShape pins E12 on a small matrix: one summary row per
// finder, every finder beats the correct-program control (no bugs on
// lockedcounter reflected as found_cells < cells), and the fuzz and
// noise rows land bugs on the buggy programs.
func TestCampaignShape(t *testing.T) {
	tables, err := Campaign(CampaignConfig{Campaign: campaign.Config{
		Programs: []string{"account", "lockedcounter"},
		Finders:  []string{"fuzz", "noise"},
		Budget:   80,
		Workers:  2,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 || tables[0].ID != "E12" || tables[1].ID != "E12b" {
		t.Fatalf("E12 table shape wrong: %+v", tables)
	}
	summary := tables[0]
	if len(summary.Rows) != 2 {
		t.Fatalf("E12 has %d rows, want one per finder", len(summary.Rows))
	}
	for _, finder := range []string{"fuzz", "noise"} {
		get := func(col string) string {
			return cell(t, summary, func(r []string) bool { return r[0] == finder }, col)
		}
		if got := atoiCell(t, get("cells")); got != 2 {
			t.Errorf("%s: cells = %d, want 2", finder, got)
		}
		if got := atoiCell(t, get("found_cells")); got != 1 {
			t.Errorf("%s: found_cells = %d, want 1 (account buggy, lockedcounter correct)", finder, got)
		}
	}
	perCell := tables[1]
	if len(perCell.Rows) != 4 {
		t.Fatalf("E12b has %d rows, want 4 cells", len(perCell.Rows))
	}
}
