package experiment

import (
	"context"

	"mtbench/internal/campaign"
)

// E12 — the campaign summary: every registered finder over the
// benchmark matrix under one shared per-cell budget, the report the
// whole campaign layer exists to produce at the push of a button. E11
// compares three search regimes on one axis; E12 is the full
// tool×program matrix view, computed through the same persistent
// machinery `cmd/campaign` stores and gates on (here with an in-memory
// store, since the prepared experiment is about the report, not the
// file).

// CampaignConfig parameterizes E12.
type CampaignConfig struct {
	// Campaign is the matrix to run; the zero value is the standard
	// fixed-seed gate campaign (the config campaign/baseline.jsonl is
	// generated from).
	Campaign campaign.Config
}

// Campaign runs E12: the campaign matrix into an in-memory store,
// rendered as the per-finder summary and the full per-cell table.
func Campaign(cfg CampaignConfig) ([]*Table, error) {
	sum, err := campaign.Run(context.Background(), cfg.Campaign, nil, nil)
	if err != nil {
		return nil, err
	}
	tables := campaign.SummaryTables(sum.Config, sum.Records)
	tables[0].ID = "E12"
	tables[0].Title = "campaign: tool×program benchmark matrix summary"
	tables[1].ID = "E12b"
	tables[1].Title = "campaign: per-cell results"
	tables[0].Note("persistent form: cmd/campaign run/resume/compare/gate over the same matrix")
	return tables, nil
}
