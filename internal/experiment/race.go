package experiment

import (
	"time"

	"mtbench/internal/core"
	"mtbench/internal/race"
	"mtbench/internal/repository"
	"mtbench/internal/sched"
)

// E2 — race-detector comparison (§2.2: detectors are compared on bugs
// found, false-alarm percentage, and overhead; "the main problem of
// race detectors of all breeds is that they produce too many false
// alarms", and "the ability to detect user implemented synchronization
// is different").

// RaceConfig parameterizes E2.
type RaceConfig struct {
	// Programs to analyze (default: all race-kind programs plus every
	// correct program as false-alarm bait).
	Programs []string
	// Runs per program (different seeds; warnings accumulate).
	Runs int
}

// NamedDetector pairs a name with a fresh-detector factory.
type NamedDetector struct {
	Name string
	New  func() race.Detector
}

// StockDetectors returns the standard comparison set.
func StockDetectors() []NamedDetector {
	return []NamedDetector{
		{Name: "lockset", New: func() race.Detector { return race.NewLockset() }},
		{Name: "hb", New: func() race.Detector { return race.NewHB(true) }},
		{Name: "hb-noatomics", New: func() race.Detector { return race.NewHB(false) }},
		{Name: "hybrid", New: func() race.Detector { return race.NewHybrid(true) }},
	}
}

// defaultRacePrograms picks the measurement set: programs with
// documented races plus the correct programs (whose every warning is a
// false alarm).
func defaultRacePrograms() []string {
	var names []string
	for _, p := range repository.All() {
		switch {
		case len(p.BugVars) > 0 && (p.Kind == repository.KindRace || p.Kind == repository.KindOrder):
			names = append(names, p.Name)
		case !p.HasBug():
			names = append(names, p.Name)
		}
	}
	return names
}

// Race runs E2: per detector, warnings classified against the
// repository's documented ground truth, plus instrumentation overhead.
func Race(cfg RaceConfig) ([]*Table, error) {
	if len(cfg.Programs) == 0 {
		cfg.Programs = defaultRacePrograms()
	}
	if cfg.Runs <= 0 {
		cfg.Runs = 10
	}

	summary := &Table{
		ID:      "E2",
		Title:   "race detectors: accuracy against documented bugs",
		Columns: []string{"detector", "bugs_found", "bugs_total", "recall", "warned_vars", "real", "false", "false_rate", "slowdown"},
	}
	summary.Note("a warning is real iff the variable is in the program's documented BugVars")
	summary.Note("correct programs contribute only false alarms; %d runs per program", cfg.Runs)

	perProg := &Table{
		ID:      "E2b",
		Title:   "race detectors: per-program warned variables",
		Columns: []string{"program", "kind", "bug_vars", "lockset", "hb", "hb-noatomics", "hybrid"},
	}

	type key struct{ det, prog string }
	warned := map[key][]string{}

	detectors := StockDetectors()
	baselineTime := time.Duration(0)
	detTime := map[string]time.Duration{}

	bugsTotal := 0
	for _, name := range cfg.Programs {
		prog, err := repository.Get(name)
		if err != nil {
			return nil, err
		}
		if len(prog.BugVars) > 0 {
			bugsTotal++
		}
		body := prog.BodyWith(nil)

		// Timing baseline: same runs without any detector.
		start := time.Now()
		runMatrix(body, cfg.Runs, nil)
		baselineTime += time.Since(start)

		for _, nd := range detectors {
			d := nd.New()
			start := time.Now()
			runMatrix(body, cfg.Runs, d)
			detTime[nd.Name] += time.Since(start)
			warned[key{nd.Name, name}] = d.WarnedVars()
		}
	}

	for _, nd := range detectors {
		bugsFound, real, false_ := 0, 0, 0
		var totalWarned int
		for _, name := range cfg.Programs {
			prog, _ := repository.Get(name)
			bug := map[string]bool{}
			for _, v := range prog.BugVars {
				bug[v] = true
			}
			vars := warned[key{nd.Name, name}]
			totalWarned += len(vars)
			hit := false
			for _, v := range vars {
				if bug[v] {
					real++
					hit = true
				} else {
					false_++
				}
			}
			if hit {
				bugsFound++
			}
		}
		slow := "-"
		if baselineTime > 0 {
			slow = f2(float64(detTime[nd.Name])/float64(baselineTime)) + "x"
		}
		summary.AddRow(nd.Name, itoa(bugsFound), itoa(bugsTotal), pct(bugsFound, bugsTotal),
			itoa(totalWarned), itoa(real), itoa(false_), pct(false_, totalWarned), slow)
	}

	for _, name := range cfg.Programs {
		prog, _ := repository.Get(name)
		row := []string{name, string(prog.Kind), join(prog.BugVars)}
		for _, nd := range detectors {
			row = append(row, join(warned[key{nd.Name, name}]))
		}
		perProg.AddRow(row...)
	}

	return []*Table{summary, perProg}, nil
}

// runMatrix executes the body under a spread of schedules with the
// listener attached (nil = none): half round-robin-style contention,
// half seeded random.
func runMatrix(body func(core.T), runs int, l core.Listener) {
	var listeners []core.Listener
	if l != nil {
		listeners = []core.Listener{l}
	}
	for seed := int64(0); seed < int64(runs); seed++ {
		var st sched.Strategy
		if seed%2 == 0 {
			st = sched.RoundRobin()
		} else {
			st = sched.Random(seed)
		}
		sched.Run(sched.Config{Strategy: st, Listeners: listeners, MaxSteps: 500_000}, body)
	}
}

func join(s []string) string {
	if len(s) == 0 {
		return "-"
	}
	out := s[0]
	for _, v := range s[1:] {
		out += "," + v
	}
	return out
}
