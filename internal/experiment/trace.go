package experiment

import (
	"bytes"
	"fmt"
	"time"

	"mtbench/internal/core"
	"mtbench/internal/repository"
	"mtbench/internal/sched"
	"mtbench/internal/trace"
)

// E9 — trace artifacts (§4 component 1: annotated traces in a standard
// format plus "a script for producing any number of desirable traces";
// §2.2's off-line storage problem motivates the compact codec).

// TraceConfig parameterizes E9.
type TraceConfig struct {
	Programs []string
	Seeds    int
}

// Trace runs E9: per program, trace size in both codecs and the
// bug-annotation fidelity.
func Trace(cfg TraceConfig) ([]*Table, error) {
	if len(cfg.Programs) == 0 {
		cfg.Programs = []string{"account", "boundedbuffer", "workqueue"}
	}
	if cfg.Seeds <= 0 {
		cfg.Seeds = 3
	}

	t := &Table{
		ID:      "E9",
		Title:   "trace production: codec sizes and annotations",
		Columns: []string{"program", "records", "jsonl_bytes", "binary_bytes", "ratio", "bug_marked", "write_us"},
	}
	t.Note("one trace per seed, %d seeds per program, random schedules; sizes summed", cfg.Seeds)
	t.Note("bug_marked = records on documented bug variables (the §4 annotation)")

	for _, name := range cfg.Programs {
		prog, err := repository.Get(name)
		if err != nil {
			return nil, err
		}
		var records, bugMarked int
		var jsonBytes, binBytes int
		var writeTime time.Duration

		for seed := int64(0); seed < int64(cfg.Seeds); seed++ {
			var jb, bb bytes.Buffer
			jw := trace.NewJSONLWriter(&jb)
			bw := trace.NewBinaryWriter(&bb)
			header := trace.Header{
				Program: name, Mode: "controlled", Seed: seed,
				Strategy: "random", Bug: prog.Synopsis,
			}
			if err := jw.WriteHeader(header); err != nil {
				return nil, err
			}
			if err := bw.WriteHeader(header); err != nil {
				return nil, err
			}
			ann := prog.Annotator()
			colJ := trace.NewCollector(jw, ann)
			colB := trace.NewCollector(bw, ann)
			counter := core.ListenerFunc(func(ev *core.Event) {
				records++
				if _, bug := ann(ev); bug {
					bugMarked++
				}
			})

			start := time.Now()
			sched.Run(sched.Config{
				Strategy:  sched.Random(seed),
				MaxSteps:  500_000,
				Listeners: []core.Listener{colJ, colB, counter},
			}, prog.BodyWith(nil))
			writeTime += time.Since(start)

			if err := jw.Flush(); err != nil {
				return nil, err
			}
			if err := bw.Flush(); err != nil {
				return nil, err
			}
			if colJ.Err() != nil || colB.Err() != nil {
				return nil, fmt.Errorf("collector error: %v / %v", colJ.Err(), colB.Err())
			}
			jsonBytes += jb.Len()
			binBytes += bb.Len()
		}

		ratio := "-"
		if binBytes > 0 {
			ratio = f2(float64(jsonBytes) / float64(binBytes))
		}
		usPerRecord := "-"
		if records > 0 {
			usPerRecord = f2(float64(writeTime.Microseconds()) / float64(records))
		}
		t.AddRow(name, itoa(records), itoa(jsonBytes), itoa(binBytes), ratio, itoa(bugMarked), usPerRecord)
	}
	return []*Table{t}, nil
}
