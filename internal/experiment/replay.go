package experiment

import (
	"time"

	"mtbench/internal/core"
	"mtbench/internal/native"
	"mtbench/internal/replay"
	"mtbench/internal/repository"
	"mtbench/internal/sched"
)

// E3 — replay (§2.2: "partial replay algorithms can be compared on the
// likelihood of performing replay and on their performance. The latter
// is significant in the record phase overhead").

// ReplayConfig parameterizes E3.
type ReplayConfig struct {
	Program string // default "account"
	// ControlledTrials is the number of record+replay pairs in
	// controlled mode.
	ControlledTrials int
	// NativeRecords and NativeReplays control the native matrix:
	// records per variant, replays per record.
	NativeRecords int
	NativeReplays int
}

// Replay runs E3 and returns its table.
func Replay(cfg ReplayConfig) ([]*Table, error) {
	if cfg.Program == "" {
		cfg.Program = "account"
	}
	if cfg.ControlledTrials <= 0 {
		cfg.ControlledTrials = 30
	}
	if cfg.NativeRecords <= 0 {
		cfg.NativeRecords = 4
	}
	if cfg.NativeReplays <= 0 {
		cfg.NativeReplays = 3
	}
	prog, err := repository.Get(cfg.Program)
	if err != nil {
		return nil, err
	}
	body := prog.BodyWith(nil)

	t := &Table{
		ID:      "E3",
		Title:   "replay: success probability and record overhead",
		Columns: []string{"mode", "variant", "trials", "success", "rate", "record_overhead"},
	}
	t.Note("program %q; controlled replay follows the decision schedule, native replay gates the event order", cfg.Program)
	t.Note("record_overhead = recording-run time / plain-run time")

	// Controlled: record under random seeds, replay, compare outcome
	// and verdict. Exactness is the controlled runtime's guarantee.
	success := 0
	var plain, recording time.Duration
	for seed := int64(0); seed < int64(cfg.ControlledTrials); seed++ {
		start := time.Now()
		res := sched.Run(sched.Config{Strategy: sched.Random(seed)}, body)
		plain += time.Since(start)

		start = time.Now()
		rec, s := replay.RecordControlled(sched.Config{Strategy: sched.Random(seed), Seed: seed}, body)
		recording += time.Since(start)
		_ = res

		rep := replay.ReplayControlled(s, sched.Config{}, body)
		if !rep.Diverged && rep.Verdict == rec.Verdict && rep.Outcome == rec.Outcome {
			success++
		}
	}
	overhead := "-"
	if plain > 0 {
		overhead = f2(float64(recording)/float64(plain)) + "x"
	}
	t.AddRow("controlled", "full-schedule", itoa(cfg.ControlledTrials), itoa(success),
		pct(success, cfg.ControlledTrials), overhead)

	// Native: record sync-only and full orders; replay each record
	// several times; success = no divergence and identical outcome.
	for _, variant := range []struct {
		name     string
		syncOnly bool
	}{{"sync-only", true}, {"full-order", false}} {
		trials, succ := 0, 0
		var plainN, recN time.Duration
		for r := 0; r < cfg.NativeRecords; r++ {
			start := time.Now()
			native.Run(native.Config{Timeout: 10 * time.Second}, body)
			plainN += time.Since(start)

			recorder := replay.NewRecorder(variant.syncOnly)
			start = time.Now()
			recRes := native.Run(native.Config{
				Timeout:   10 * time.Second,
				Listeners: []core.Listener{recorder},
			}, body)
			recN += time.Since(start)
			s := recorder.Schedule(cfg.Program, int64(r))

			for i := 0; i < cfg.NativeReplays; i++ {
				trials++
				enf := replay.NewEnforcer(s)
				enf.Timeout = 2 * time.Second
				repRes := native.Run(native.Config{
					Timeout: 20 * time.Second,
					Gate:    enf,
				}, body)
				div, _ := enf.Diverged()
				if !div && repRes.Verdict == recRes.Verdict && repRes.Outcome == recRes.Outcome {
					succ++
				}
			}
		}
		overhead := "-"
		if plainN > 0 {
			overhead = f2(float64(recN)/float64(plainN)) + "x"
		}
		t.AddRow("native", variant.name, itoa(trials), itoa(succ), pct(succ, trials), overhead)
	}

	return []*Table{t}, nil
}
