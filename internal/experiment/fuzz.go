package experiment

import (
	"time"

	"mtbench/internal/core"
	"mtbench/internal/explore"
	"mtbench/internal/fuzz"
	"mtbench/internal/noise"
	"mtbench/internal/repository"
	"mtbench/internal/sched"
)

// E11 — coverage-guided schedule fuzzing versus the two search
// extremes it interpolates between: blind noise injection and
// systematic exploration. The three-way table is exactly the
// comparison the paper's framework exists to enable — same programs,
// same run budget, different search strategy — extended with targets
// (abastack, semleak, rwupgrade, waitholdinglock) that none of the
// stock tools were tuned on.

// FuzzConfig parameterizes E11.
type FuzzConfig struct {
	// Programs and the budget each method gets per program.
	Programs []string
	// Budget is the number of runs/schedules every method may spend per
	// program (0 = 2000).
	Budget int
	// Workers is the fuzzing/exploration worker-pool size (0 = 1, the
	// deterministic choice; the table reports runs-to-first-bug, which
	// is only reproducible serially).
	Workers int
	// Seed is the fuzzer's master seed.
	Seed int64
}

// DefaultFuzzPrograms is the E11 spread: the exploration experiment's
// classics plus the scenario-diversity additions the existing tools
// were not tuned on.
var DefaultFuzzPrograms = []string{
	"account", "bankwithdraw", "statmax", "philosophers",
	"abastack", "semleak", "rwupgrade", "waitholdinglock",
}

// fuzzParams shrinks the larger programs the same way E5 does, so all
// three methods face identical instances.
var fuzzParams = map[string]repository.Params{
	"account":      {"depositors": 2, "deposits": 1},
	"statmax":      {"reporters": 2},
	"philosophers": {"philosophers": 2, "rounds": 1},
}

// Fuzz runs E11: per program, distinct bugs found and runs to first
// bug for schedule fuzzing, random noise and systematic DFS under one
// shared run budget.
func Fuzz(cfg FuzzConfig) ([]*Table, error) {
	if len(cfg.Programs) == 0 {
		cfg.Programs = DefaultFuzzPrograms
	}
	if cfg.Budget <= 0 {
		cfg.Budget = 2000
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}

	t := &Table{
		ID:      "E11",
		Title:   "schedule fuzzing vs noise vs systematic exploration (shared run budget)",
		Columns: []string{"program", "method", "runs", "bugs", "first_bug", "wall_ms"},
	}
	t.Note("every method spends at most %d runs per program; first_bug = 1-based run index, '-' = not found", cfg.Budget)
	t.Note("fuzz = coverage-guided schedule mutation (internal/fuzz); noise = yield-noise over random dispatch, fresh seed per run; explore = serial DFS")
	t.Note("bugs = distinct failures by signature (core.BugSignature)")

	for _, name := range cfg.Programs {
		prog, err := repository.Get(name)
		if err != nil {
			return nil, err
		}
		body := prog.BodyWith(fuzzParams[name])

		// Coverage-guided schedule fuzzing.
		start := time.Now()
		fr := fuzz.Fuzz(fuzz.Options{
			MaxRuns: cfg.Budget,
			Seed:    cfg.Seed,
			Workers: cfg.Workers,
			Name:    name,
		}, body)
		addE11Row(t, name, "fuzz", fr.Runs, len(fr.Bugs), fr.FirstBugIndex(), start)

		// Noise baseline: one fresh-seeded noise run per budget unit.
		start = time.Now()
		seen := map[string]bool{}
		noiseFirst := -1
		for seed := int64(0); seed < int64(cfg.Budget); seed++ {
			st := noise.NewStrategy(nil, noise.NewBernoulli(0.4, noise.KindYield), seed)
			res := sched.Run(sched.Config{Strategy: st, Seed: seed, Name: name, MaxSteps: 200_000}, body)
			if res.Verdict.Bug() {
				seen[core.BugSignature(res)] = true
				if noiseFirst < 0 {
					noiseFirst = int(seed) + 1
				}
			}
		}
		addE11Row(t, name, "noise", cfg.Budget, len(seen), noiseFirst, start)

		// Systematic exploration under the same budget.
		start = time.Now()
		er := explore.Explore(explore.Options{
			MaxSchedules: cfg.Budget,
			Workers:      cfg.Workers,
			Name:         name,
		}, body)
		if er.Err != nil {
			return nil, er.Err
		}
		addE11Row(t, name, "explore", er.Schedules, len(er.Bugs), er.FirstBugIndex(), start)
	}
	return []*Table{t}, nil
}

func addE11Row(t *Table, prog, method string, runs, bugs, first int, start time.Time) {
	firstCell := "-"
	if first >= 1 {
		firstCell = itoa(first)
	}
	t.AddRow(prog, method, itoa(runs), itoa(bugs), firstCell, i64(int64(time.Since(start)/time.Millisecond)))
}
