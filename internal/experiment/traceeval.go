package experiment

import (
	"bytes"
	"fmt"

	"mtbench/internal/core"
	"mtbench/internal/deadlock"
	"mtbench/internal/ltl"
	"mtbench/internal/race"
	"mtbench/internal/repository"
	"mtbench/internal/sched"
	"mtbench/internal/trace"
)

// E10 — trace evaluation (§3's JPaX pipeline: instrument, log events,
// then "event traces are examined for data races (using the Eraser
// algorithm) and deadlock potentials" plus "a set of user provided
// properties stated in temporal logic").

// TraceEvalConfig parameterizes E10.
type TraceEvalConfig struct {
	Seeds int
}

// evalProps lists the temporal properties monitored per program.
var evalProps = map[string][]string{
	"account": {
		"H(write(balance) -> O lock(*))", // lock discipline: violated (no lock exists)
	},
	"lockedcounter": {
		"H(write(count) -> O lock(mu))", // holds
	},
	"boundedbuffer": {
		"H(awake(notempty) -> O (signal(notempty) | broadcast(notempty)))", // holds
	},
	"inversion": {
		"H(unlock(lockA) -> O lock(lockA))", // lock pairing: holds
	},
}

// TraceEval runs E10: each program's recorded trace analyzed offline
// by the Eraser lockset, the happens-before detector, the GoodLock
// cycle analyzer, and the LTL monitors — all consuming the same trace.
func TraceEval(cfg TraceEvalConfig) ([]*Table, error) {
	if cfg.Seeds <= 0 {
		cfg.Seeds = 5
	}
	programs := []string{"account", "lockedcounter", "boundedbuffer", "inversion"}

	t := &Table{
		ID:      "E10",
		Title:   "offline trace evaluation (JPaX pipeline): one trace, four analyzers",
		Columns: []string{"program", "records", "lockset_vars", "hb_vars", "lock_cycles", "ltl_property", "ltl_violations"},
	}
	t.Note("traces recorded once under %d random schedules, then analyzed offline", cfg.Seeds)

	for _, name := range programs {
		prog, err := repository.Get(name)
		if err != nil {
			return nil, err
		}

		// Record one trace per seed (a trace describes a single
		// execution), then replay each into the shared analyzers; run
		// boundaries reset per-execution shadow state while findings
		// accumulate.
		traces := make([]*bytes.Buffer, cfg.Seeds)
		records := 0
		counter := core.ListenerFunc(func(*core.Event) { records++ })
		for seed := int64(0); seed < int64(cfg.Seeds); seed++ {
			buf := &bytes.Buffer{}
			traces[seed] = buf
			w := trace.NewJSONLWriter(buf)
			if err := w.WriteHeader(trace.Header{Program: name, Mode: "controlled", Seed: seed}); err != nil {
				return nil, err
			}
			col := trace.NewCollector(w, prog.Annotator())
			sched.Run(sched.Config{
				Strategy:  sched.Random(seed),
				MaxSteps:  500_000,
				Listeners: []core.Listener{col, counter},
			}, prog.BodyWith(nil))
			if err := w.Flush(); err != nil {
				return nil, err
			}
		}

		ls := race.NewLockset()
		hb := race.NewHB(true)
		gl := deadlock.NewAnalyzer()
		var monitors []*ltl.Monitor
		for _, src := range evalProps[name] {
			f, err := ltl.Parse(src)
			if err != nil {
				return nil, fmt.Errorf("property %q: %w", src, err)
			}
			monitors = append(monitors, ltl.NewMonitor(f))
		}
		listeners := core.MultiListener{ls, hb, gl}
		for _, m := range monitors {
			listeners = append(listeners, m)
		}
		for _, buf := range traces {
			r, err := trace.NewJSONLReader(buf)
			if err != nil {
				return nil, err
			}
			if err := trace.Replay(r, listeners); err != nil {
				return nil, err
			}
		}

		props, viols := "-", "-"
		if len(monitors) > 0 {
			props = monitors[0].Property
			viols = itoa(len(monitors[0].Violations()))
		}
		t.AddRow(name, itoa(records),
			join(ls.WarnedVars()), join(hb.WarnedVars()),
			itoa(len(gl.Potentials())), props, viols)
	}
	return []*Table{t}, nil
}
