package experiment

import (
	"bytes"
	"fmt"

	"mtbench/internal/core"
	"mtbench/internal/coverage"
	"mtbench/internal/deadlock"
	"mtbench/internal/ltl"
	"mtbench/internal/noise"
	"mtbench/internal/race"
	"mtbench/internal/repository"
	"mtbench/internal/sched"
	"mtbench/internal/staticinfo"
	"mtbench/internal/trace"
)

// F1 — Figure 1 of the paper, executed: every edge of the technology
// interrelation diagram carries a real artifact through one pipeline.
//
//	static analysis ──info──▶ instrumentation plan
//	instrumentation ──events─▶ noise / race / coverage / trace
//	trace ──records──▶ offline race + lock-graph + temporal monitoring
//	noise ──schedule─▶ bug; schedule ──replay──▶ same bug
//
// The table reports the artifact produced at each stage, which is the
// benchmark's end-to-end smoke check.

// PipelineConfig parameterizes F1.
type PipelineConfig struct {
	Program string // default "account"
	Seeds   int    // noise seeds to try until the bug shows
}

// Pipeline runs F1 over one program.
func Pipeline(cfg PipelineConfig) ([]*Table, error) {
	if cfg.Program == "" {
		cfg.Program = "account"
	}
	if cfg.Seeds <= 0 {
		cfg.Seeds = 200
	}
	prog, err := repository.Get(cfg.Program)
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:      "F1",
		Title:   "technology pipeline (Figure 1 executed) on " + cfg.Program,
		Columns: []string{"stage", "technology", "artifact"},
	}

	// Stage 1: static analysis.
	info, err := staticinfo.ForProgram(prog)
	if err != nil {
		return nil, err
	}
	t.AddRow("1", "static analysis",
		fmt.Sprintf("shared=%v suspects=%v cycles=%d", info.SharedVars, info.RaceSuspects, len(info.DeadlockSuspects)))

	// Stage 2: instrumentation plan from static info.
	plan := info.Plan()
	t.AddRow("2", "instrumentor", fmt.Sprintf("plan: access probes limited to %d shared vars", len(info.SharedVars)))

	// Stage 3: instrumented noisy runs with online tools + trace
	// collection attached.
	var buf bytes.Buffer
	w := trace.NewJSONLWriter(&buf)
	if err := w.WriteHeader(trace.Header{Program: cfg.Program, Mode: "controlled", Noise: "bernoulli-0.4"}); err != nil {
		return nil, err
	}
	col := trace.NewCollector(w, prog.Annotator())
	onlineRace := race.NewHybrid(true)
	tracker := coverage.NewTracker()

	var bugRes *core.Result
	var bugSeed int64 = -1
	runs := 0
	for seed := int64(0); seed < int64(cfg.Seeds); seed++ {
		st := noise.NewStrategy(nil, noise.NewBernoulli(0.4, noise.KindYield), seed)
		res := sched.Run(sched.Config{
			Strategy:       st,
			Plan:           plan,
			Seed:           seed,
			RecordSchedule: true,
			MaxSteps:       500_000,
			Listeners:      []core.Listener{col, onlineRace, tracker},
			Name:           cfg.Program,
		}, prog.BodyWith(nil))
		runs++
		if res.Verdict.Bug() && bugRes == nil {
			bugRes, bugSeed = res, seed
			break
		}
	}
	if err := w.Flush(); err != nil {
		return nil, err
	}
	verdict := "bug not reached"
	if bugRes != nil {
		verdict = fmt.Sprintf("bug after %d runs (seed %d): %s", runs, bugSeed, bugRes.Verdict)
	}
	t.AddRow("3", "noise maker", verdict)
	t.AddRow("3", "online race detection", fmt.Sprintf("hybrid warned %v", onlineRace.WarnedVars()))
	t.AddRow("3", "coverage", tracker.String())

	// Stage 4: replay the failing schedule.
	if bugRes != nil {
		rep := sched.Run(sched.Config{
			Strategy: &sched.FixedSchedule{Decisions: bugRes.Schedule},
			Plan:     plan,
		}, prog.BodyWith(nil))
		t.AddRow("4", "replay", fmt.Sprintf("verdict reproduced: %v (diverged=%v)", rep.Verdict, rep.Diverged))
	} else {
		t.AddRow("4", "replay", "skipped (no failing schedule)")
	}

	// Stage 5: offline trace evaluation.
	offLS := race.NewLockset()
	gl := deadlock.NewAnalyzer()
	f, err := ltl.Parse("H(write(" + firstOr(prog.BugVars, "*") + ") -> O lock(*))")
	if err != nil {
		return nil, err
	}
	mon := ltl.NewMonitor(f)
	traceBytes := buf.Len()
	r, err := trace.NewJSONLReader(&buf)
	if err != nil {
		return nil, err
	}
	records := 0
	count := core.ListenerFunc(func(*core.Event) { records++ })
	if err := trace.Replay(r, core.MultiListener{offLS, gl, mon, count}); err != nil {
		return nil, err
	}
	t.AddRow("5", "trace", fmt.Sprintf("%d annotated records (%d bytes JSONL)", records, traceBytes))
	t.AddRow("5", "offline race detection", fmt.Sprintf("lockset warned %v", offLS.WarnedVars()))
	t.AddRow("5", "offline lock-graph", fmt.Sprintf("%d deadlock potentials", len(gl.Potentials())))
	t.AddRow("5", "temporal monitoring", fmt.Sprintf("%q: %d violations", mon.Property, len(mon.Violations())))

	return []*Table{t}, nil
}

func firstOr(s []string, def string) string {
	if len(s) > 0 {
		return s[0]
	}
	return def
}
