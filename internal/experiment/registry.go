package experiment

import (
	"fmt"
	"sort"
)

// Runner is a named prepared experiment with quick defaults.
type Runner struct {
	ID    string
	Title string
	Run   func() ([]*Table, error)
}

// Runners returns every prepared experiment, keyed and sorted by ID —
// the CLI's and bench harness's dispatch table.
func Runners() []Runner {
	rs := []Runner{
		{"F1", "technology pipeline (Figure 1 executed)", func() ([]*Table, error) { return Pipeline(PipelineConfig{}) }},
		{"E1", "noise-maker comparison", func() ([]*Table, error) { return Noise(NoiseConfig{}) }},
		{"E2", "race-detector comparison", func() ([]*Table, error) { return Race(RaceConfig{}) }},
		{"E3", "replay success and overhead", func() ([]*Table, error) { return Replay(ReplayConfig{}) }},
		{"E4", "coverage growth and budget", func() ([]*Table, error) { return Coverage(CoverageConfig{}) }},
		{"E5", "systematic exploration vs random", func() ([]*Table, error) { return Explore(ExploreConfig{}) }},
		{"E6", "cloning detection rates", func() ([]*Table, error) { return Cloning(CloningConfig{}) }},
		{"E7", "multi-outcome distributions", func() ([]*Table, error) { return Multiout(MultioutConfig{}) }},
		{"E8", "static analysis and probe pruning", func() ([]*Table, error) { return Static(StaticConfig{}) }},
		{"E9", "trace codecs and annotations", func() ([]*Table, error) { return Trace(TraceConfig{}) }},
		{"E10", "offline trace evaluation (JPaX)", func() ([]*Table, error) { return TraceEval(TraceEvalConfig{}) }},
		{"E11", "schedule fuzzing vs noise vs exploration", func() ([]*Table, error) { return Fuzz(FuzzConfig{}) }},
		{"E12", "campaign: tool×program benchmark matrix", func() ([]*Table, error) { return Campaign(CampaignConfig{}) }},
		{"E13", "bounding portfolio: bounded vs reduced vs fuzzed regimes", func() ([]*Table, error) { return Bounding(BoundingConfig{}) }},
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i].ID < rs[j].ID })
	return rs
}

// Get returns the runner with the given ID.
func Get(id string) (Runner, error) {
	for _, r := range Runners() {
		if r.ID == id {
			return r, nil
		}
	}
	return Runner{}, fmt.Errorf("experiment: unknown id %q", id)
}
