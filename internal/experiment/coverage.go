package experiment

import (
	"fmt"

	"mtbench/internal/core"
	"mtbench/internal/coverage"
	"mtbench/internal/noise"
	"mtbench/internal/repository"
	"mtbench/internal/sched"
	"mtbench/internal/staticinfo"
)

// E4 — coverage (§2.2: contention coverage models, their feasible-task
// universes from static analysis, and using coverage "to decide, given
// limited resources, how many times each test should be executed").

// CoverageConfig parameterizes E4.
type CoverageConfig struct {
	Programs []string // default spread
	Runs     int      // noisy runs per program
	Budget   int      // runs to allocate in the budget table
}

// Coverage runs E4: coverage growth curves per program (against the
// statically bounded universe) and the resulting budget allocation.
func Coverage(cfg CoverageConfig) ([]*Table, error) {
	if len(cfg.Programs) == 0 {
		cfg.Programs = []string{"account", "boundedbuffer", "philosophersfixed", "lockedcounter"}
	}
	if cfg.Runs <= 0 {
		cfg.Runs = 12
	}
	if cfg.Budget <= 0 {
		cfg.Budget = 40
	}

	growth := &Table{
		ID:      "E4",
		Title:   "coverage growth over noisy runs (covered contention tasks)",
		Columns: append([]string{"run"}, cfg.Programs...),
	}
	growth.Note("task count = contended vars + contended locks + cross-thread access pairs")

	final := &Table{
		ID:      "E4b",
		Title:   "final coverage against the static feasible universe",
		Columns: []string{"program", "model", "covered", "feasible", "percent"},
	}

	histories := map[string]coverage.History{}
	trackers := map[string]*coverage.Tracker{}
	curves := map[string][]int{}

	for _, name := range cfg.Programs {
		prog, err := repository.Get(name)
		if err != nil {
			return nil, err
		}
		body := prog.BodyWith(nil)
		tr := coverage.NewTracker()
		trackers[name] = tr
		for seed := int64(0); seed < int64(cfg.Runs); seed++ {
			st := noise.NewStrategy(nil, noise.NewBernoulli(0.3, noise.KindYield), seed)
			sched.Run(sched.Config{
				Strategy:  st,
				Listeners: []core.Listener{tr},
				MaxSteps:  500_000,
			}, body)
			curves[name] = append(curves[name], tr.CoveredCount())
		}
		histories[name] = coverage.History(curves[name])
	}

	for i := 0; i < cfg.Runs; i++ {
		row := []string{itoa(i + 1)}
		for _, name := range cfg.Programs {
			row = append(row, itoa(curves[name][i]))
		}
		growth.AddRow(row...)
	}

	for _, name := range cfg.Programs {
		prog, _ := repository.Get(name)
		var u *coverage.Universe
		if info, err := staticinfo.ForProgram(prog); err == nil {
			u = info.Universe()
		}
		for _, r := range trackers[name].Report(u) {
			final.AddRow(name, r.Model, itoa(r.Covered), itoa(r.Total), fmt.Sprintf("%.1f%%", r.Percent))
		}
	}

	alloc := coverage.Allocate(histories, cfg.Budget)
	budget := &Table{
		ID:      "E4c",
		Title:   fmt.Sprintf("budget allocation for %d further runs", cfg.Budget),
		Columns: []string{"program", "last_coverage", "allocated_runs"},
	}
	budget.Note("greedy marginal-gain allocation with saturation decay (§2.2's budget question)")
	for _, name := range cfg.Programs {
		h := histories[name]
		last := 0
		if len(h) > 0 {
			last = h[len(h)-1]
		}
		budget.AddRow(name, itoa(last), itoa(alloc[name]))
	}

	return []*Table{growth, final, budget}, nil
}
