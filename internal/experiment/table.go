// Package experiment is the benchmark's prepared experiment (§4,
// component 2): "prepared scripts with which programs such as race
// detection and noise can be evaluated as to how frequently they
// uncover faults, and if they raise false alarms ... This script
// produces a prepared evaluation report, which is easy to understand.
// ... with the push of a button, it can be evaluated and compared to
// alternative approaches."
//
// Each experiment function runs a tool matrix over the repository and
// returns Tables; cmd/mtbench renders them as text, CSV or JSON. The
// experiment IDs (E1..E13, F1) are indexed in DESIGN.md and their
// measured results recorded in EXPERIMENTS.md.
package experiment

import (
	"fmt"

	"mtbench/internal/report"
)

// Table is one evaluation report table. It is the shared report type
// of internal/report (aliased here so every existing experiment and
// caller keeps compiling); internal/campaign renders its comparison
// reports through the same type.
type Table = report.Table

var (
	// JSONAll writes several tables as one JSON array.
	JSONAll = report.JSONAll
	// RenderAll renders several tables as text.
	RenderAll = report.RenderAll
)

func pct(num, den int) string {
	if den == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(num)/float64(den))
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

func itoa(v int) string { return fmt.Sprintf("%d", v) }

func i64(v int64) string { return fmt.Sprintf("%d", v) }
