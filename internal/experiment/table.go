// Package experiment is the benchmark's prepared experiment (§4,
// component 2): "prepared scripts with which programs such as race
// detection and noise can be evaluated as to how frequently they
// uncover faults, and if they raise false alarms ... This script
// produces a prepared evaluation report, which is easy to understand.
// ... with the push of a button, it can be evaluated and compared to
// alternative approaches."
//
// Each experiment function runs a tool matrix over the repository and
// returns Tables; cmd/mtbench renders them as text, CSV or JSON. The
// experiment IDs (E1..E11, F1) are indexed in DESIGN.md and their
// measured results recorded in EXPERIMENTS.md.
package experiment

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Table is one evaluation report table.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row; the cell count must match the columns.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Columns) {
		panic(fmt.Sprintf("experiment: table %s row has %d cells, want %d", t.ID, len(cells), len(t.Columns)))
	}
	t.Rows = append(t.Rows, cells)
}

// Note appends a footnote.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// CSV writes the table as comma-separated values (quoted minimally).
func (t *Table) CSV(w io.Writer) error {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	var b strings.Builder
	cells := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		cells[i] = esc(c)
	}
	b.WriteString(strings.Join(cells, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		for i, c := range row {
			cells[i] = esc(c)
		}
		b.WriteString(strings.Join(cells, ","))
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// JSON writes the table as a single JSON object ({id, title, columns,
// rows, notes}) — the machine-readable serialization external campaign
// tooling collects instead of parsing rendered text.
func (t *Table) JSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(t.jsonForm())
}

// JSONAll writes several tables as one JSON array.
func JSONAll(w io.Writer, tables []*Table) error {
	forms := make([]tableJSON, len(tables))
	for i, t := range tables {
		forms[i] = t.jsonForm()
	}
	enc := json.NewEncoder(w)
	return enc.Encode(forms)
}

// tableJSON fixes the serialized field names independently of the Go
// struct, so renaming fields cannot silently break collectors.
type tableJSON struct {
	ID      string     `json:"id"`
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	Notes   []string   `json:"notes,omitempty"`
}

func (t *Table) jsonForm() tableJSON {
	rows := t.Rows
	if rows == nil {
		rows = [][]string{}
	}
	return tableJSON{ID: t.ID, Title: t.Title, Columns: t.Columns, Rows: rows, Notes: t.Notes}
}

// RenderAll renders several tables as text.
func RenderAll(w io.Writer, tables []*Table) error {
	for _, t := range tables {
		if err := t.Render(w); err != nil {
			return err
		}
	}
	return nil
}

func pct(num, den int) string {
	if den == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(num)/float64(den))
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

func itoa(v int) string { return fmt.Sprintf("%d", v) }

func i64(v int64) string { return fmt.Sprintf("%d", v) }
