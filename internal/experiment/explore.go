package experiment

import (
	"mtbench/internal/explore"
	"mtbench/internal/repository"
	"mtbench/internal/sched"
)

// E5 — systematic state-space exploration (§2.2), compared against
// random search, with the preemption-bound and sleep-set ablations
// DESIGN.md calls out.

// ExploreConfig parameterizes E5.
type ExploreConfig struct {
	// Programs and their small parameterizations (exploration needs
	// small instances; that is its nature).
	Programs     []string
	MaxSchedules int
	RandomSeeds  int
	// Workers is the exploration worker-pool size (0 = 1). The table
	// reports schedules-to-first-bug, which is only deterministic for
	// a single worker, so E5 defaults to serial; raise it to measure
	// wall-clock speedups on large instances instead.
	Workers int
}

// exploreParams shrinks each program to an explorable size.
var exploreParams = map[string]repository.Params{
	"account":      {"depositors": 2, "deposits": 1},
	"statmax":      {"reporters": 2},
	"inversion":    {},
	"lostnotify":   {},
	"philosophers": {"philosophers": 2, "rounds": 1},
}

// Explore runs E5: first-bug indices and explored-tree sizes for DFS
// variants (bounding, sleep sets, DPOR, state caching) versus random
// search.
func Explore(cfg ExploreConfig) ([]*Table, error) {
	if len(cfg.Programs) == 0 {
		cfg.Programs = []string{"account", "statmax", "inversion", "philosophers", "lostnotify"}
	}
	if cfg.MaxSchedules <= 0 {
		cfg.MaxSchedules = 30000
	}
	if cfg.RandomSeeds <= 0 {
		cfg.RandomSeeds = 30000
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}

	t := &Table{
		ID:      "E5",
		Title:   "systematic exploration vs random search (first bug + tree size)",
		Columns: []string{"program", "method", "first_bug", "schedules", "exhausted", "pruned", "cache_hits"},
	}
	t.Note("first_bug = 1-based index of the first erroneous schedule; '-' = not found within budget")
	t.Note("each DFS variant explores its whole (bounded) tree, so schedules compares search-space sizes; the first-bug index is unaffected")
	t.Note("random = fresh seeded random scheduler per run (the noise-testing extreme)")
	t.Note("pruned = options cut by sleep sets + DPOR backtrack sets; cache_hits = subtrees cut by the canonical-state cache")

	methods := []struct {
		name string
		opts func() explore.Options
	}{
		{"dfs", func() explore.Options {
			return explore.Options{MaxSchedules: cfg.MaxSchedules, Workers: cfg.Workers}
		}},
		{"dfs-bound1", func() explore.Options {
			return explore.Options{MaxSchedules: cfg.MaxSchedules, Workers: cfg.Workers, PreemptionBound: explore.Bound(1)}
		}},
		{"dfs-bound2", func() explore.Options {
			return explore.Options{MaxSchedules: cfg.MaxSchedules, Workers: cfg.Workers, PreemptionBound: explore.Bound(2)}
		}},
		{"dfs-sleepsets", func() explore.Options {
			return explore.Options{MaxSchedules: cfg.MaxSchedules, Workers: cfg.Workers, SleepSets: true}
		}},
		{"dfs-por", func() explore.Options {
			return explore.Options{MaxSchedules: cfg.MaxSchedules, Workers: cfg.Workers, DPOR: true}
		}},
		{"dfs-por-cache", func() explore.Options {
			return explore.Options{MaxSchedules: cfg.MaxSchedules, Workers: cfg.Workers, DPOR: true, StateCache: true}
		}},
		{"dfs-timeouts", func() explore.Options {
			return explore.Options{MaxSchedules: cfg.MaxSchedules, Workers: cfg.Workers, ExploreTimeouts: true, PreemptionBound: explore.Bound(2)}
		}},
	}

	for _, name := range cfg.Programs {
		prog, err := repository.Get(name)
		if err != nil {
			return nil, err
		}
		body := prog.BodyWith(exploreParams[name])

		for _, m := range methods {
			res := explore.Explore(m.opts(), body)
			if res.Err != nil {
				return nil, res.Err
			}
			first := "-"
			if idx := res.FirstBugIndex(); idx >= 1 {
				first = itoa(idx)
			}
			exhausted := "no"
			if res.Exhausted {
				exhausted = "yes"
			}
			t.AddRow(name, m.name, first, itoa(res.Schedules), exhausted,
				itoa(res.Stats.SleepPruned+res.Stats.PORPruned), itoa(res.Stats.StateHits))
		}

		// Random search baseline: independent seeds until first bug.
		first := "-"
		for seed := int64(0); seed < int64(cfg.RandomSeeds); seed++ {
			res := sched.Run(sched.Config{Strategy: sched.Random(seed), MaxSteps: 200_000}, body)
			if res.Verdict.Bug() {
				first = itoa(int(seed) + 1)
				break
			}
		}
		t.AddRow(name, "random", first, first, "-", "-", "-")
	}
	return []*Table{t}, nil
}
