package experiment

import (
	"mtbench/internal/explore"
	"mtbench/internal/fuzz"
	pctpkg "mtbench/internal/pct"
	"mtbench/internal/repository"
)

// E13 — the bounding portfolio under one shared budget: bounded
// systematic search (preemption / variable / thread bounding, after
// Bindal, Bansal and Lal), reduced search (DPOR + state caching),
// greybox fuzzing and PCT all spend the same per-cell budget, so the
// table compares what each regime buys per schedule — the portfolio
// question the campaign matrix gates and this experiment measures.

// BoundingConfig parameterizes E13.
type BoundingConfig struct {
	// Programs and their small parameterizations (shared with the
	// campaign gate set, so the regimes face identical instances).
	Programs []string
	// Budget is the shared per-(program, regime) effort: schedules for
	// the explore variants, runs for fuzz and pct (0 = 2000).
	Budget int
	// MaxSteps bounds each run (0 = 200000).
	MaxSteps int64
	// Seed drives the randomized regimes (fuzz, pct); the systematic
	// ones ignore it.
	Seed int64
	// VariableBound / ThreadBound / PCTDepth override the regime
	// parameters (0 = the campaign defaults: bounds 2, depth 3).
	VariableBound int
	ThreadBound   int
	PCTDepth      int
}

// boundingParams shrinks each program exactly like the campaign gate.
var boundingParams = map[string]repository.Params{
	"account":      {"depositors": 2, "deposits": 1},
	"philosophers": {"philosophers": 2, "rounds": 1},
	"statmax":      {"reporters": 2},
}

// Bounding runs E13: first-bug indices, budget consumption and bug
// counts for each regime of the portfolio under one shared budget.
func Bounding(cfg BoundingConfig) ([]*Table, error) {
	if len(cfg.Programs) == 0 {
		cfg.Programs = []string{"account", "philosophers", "statmax", "abastack"}
	}
	if cfg.Budget <= 0 {
		cfg.Budget = 2000
	}
	if cfg.MaxSteps <= 0 {
		cfg.MaxSteps = 200_000
	}
	if cfg.VariableBound <= 0 {
		cfg.VariableBound = 2
	}
	if cfg.ThreadBound <= 0 {
		cfg.ThreadBound = 2
	}

	t := &Table{
		ID:      "E13",
		Title:   "bounding portfolio: bounded vs reduced vs fuzzed regimes, one shared budget",
		Columns: []string{"program", "regime", "first_bug", "runs", "exhausted", "bugs", "bound_pruned"},
	}
	t.Note("every regime spends at most the same budget (schedules or runs); first_bug = 1-based index, '-' = not found")
	t.Note("dfs-vb/dfs-tb cut context switches outside a small object/thread set (Bindal et al.); exhausted = the bounded tree was fully explored")
	t.Note("bound_pruned = options cut by the variable/thread bound (vb_pruned + tb_pruned); '-' for regimes without bound counters")
	t.Note("fuzz and pct are randomized under the config seed; pct's per-run hit probability has the documented depth-d lower bound")

	for _, name := range cfg.Programs {
		prog, err := repository.Get(name)
		if err != nil {
			return nil, err
		}
		body := prog.BodyWith(boundingParams[name])

		runExplore := func(regime string, opts explore.Options) error {
			opts.MaxSchedules = cfg.Budget
			opts.MaxSteps = cfg.MaxSteps
			opts.Workers = 1
			opts.Name = name
			opts.Plan = prog.Plan
			res := explore.Explore(opts, body)
			if res.Err != nil {
				return res.Err
			}
			first := "-"
			if idx := res.FirstBugIndex(); idx >= 1 {
				first = itoa(idx)
			}
			exhausted := "no"
			if res.Exhausted {
				exhausted = "yes"
			}
			pruned := "-"
			if opts.VariableBound != nil || opts.ThreadBound != nil {
				pruned = itoa(res.Stats.VBPruned + res.Stats.TBPruned)
			}
			t.AddRow(name, regime, first, itoa(res.Schedules), exhausted, itoa(len(res.Bugs)), pruned)
			return nil
		}

		if err := runExplore("dfs", explore.Options{}); err != nil {
			return nil, err
		}
		if err := runExplore("dfs-pbound2", explore.Options{PreemptionBound: explore.Bound(2)}); err != nil {
			return nil, err
		}
		if err := runExplore("dfs-vb", explore.Options{VariableBound: explore.Bound(cfg.VariableBound)}); err != nil {
			return nil, err
		}
		if err := runExplore("dfs-tb", explore.Options{ThreadBound: explore.Bound(cfg.ThreadBound)}); err != nil {
			return nil, err
		}
		if err := runExplore("dfs-por-cache", explore.Options{DPOR: true, StateCache: true}); err != nil {
			return nil, err
		}

		fr := fuzz.Fuzz(fuzz.Options{
			MaxRuns:  cfg.Budget,
			MaxSteps: cfg.MaxSteps,
			Seed:     cfg.Seed,
			Workers:  1,
			Name:     name,
			Plan:     prog.Plan,
		}, body)
		first := "-"
		if idx := fr.FirstBugIndex(); idx >= 1 {
			first = itoa(idx)
		}
		t.AddRow(name, "fuzz", first, itoa(fr.Runs), "-", itoa(len(fr.Bugs)), "-")

		pr := pctpkg.Run(pctpkg.Options{
			MaxRuns:  cfg.Budget,
			MaxSteps: cfg.MaxSteps,
			Seed:     cfg.Seed,
			Depth:    cfg.PCTDepth,
			Name:     name,
			Plan:     prog.Plan,
		}, body)
		first = "-"
		if idx := pr.FirstBugIndex(); idx >= 1 {
			first = itoa(idx)
		}
		t.AddRow(name, "pct", first, itoa(pr.Runs), "-", itoa(len(pr.Bugs)), "-")
	}
	return []*Table{t}, nil
}
