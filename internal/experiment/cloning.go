package experiment

import (
	"mtbench/internal/cloning"
	"mtbench/internal/noise"
	"mtbench/internal/sched"
)

// E6 — cloning (§2.3: "because the same test is cloned many times,
// contentions are almost guaranteed"; cloning "may be coupled with
// ... noise making ... for greater efficiency").

// CloningConfig parameterizes E6.
type CloningConfig struct {
	CloneCounts []int
	Runs        int
	Stock       int64
}

// Cloning runs E6: oversell detection rate versus clone count, with
// and without noise on top.
func Cloning(cfg CloningConfig) ([]*Table, error) {
	if len(cfg.CloneCounts) == 0 {
		cfg.CloneCounts = []int{1, 2, 4, 8, 16}
	}
	if cfg.Runs <= 0 {
		cfg.Runs = 40
	}
	if cfg.Stock <= 0 {
		cfg.Stock = 5
	}
	test := cloning.Reserve(cfg.Stock)

	t := &Table{
		ID:      "E6",
		Title:   "cloning: detection rate vs clone count",
		Columns: []string{"clones", "runs", "plain_detect", "plain_rate", "noise_detect", "noise_rate"},
	}
	t.Note("test: clients reserving from stock of %d with a check-then-act window", cfg.Stock)
	t.Note("plain = random dispatch only; noise = +bernoulli(0.3) yield noise")

	for _, n := range cfg.CloneCounts {
		plain, noisy := 0, 0
		for seed := int64(0); seed < int64(cfg.Runs); seed++ {
			res := cloning.Controlled(sched.Config{
				Strategy: sched.RandomWhenBlocked(seed),
				MaxSteps: 500_000,
			}, test, n)
			if res.Verdict.Bug() {
				plain++
			}
			st := noise.NewStrategy(nil, noise.NewBernoulli(0.3, noise.KindYield), seed)
			res = cloning.Controlled(sched.Config{Strategy: st, MaxSteps: 500_000}, test, n)
			if res.Verdict.Bug() {
				noisy++
			}
		}
		t.AddRow(itoa(n), itoa(cfg.Runs), itoa(plain), pct(plain, cfg.Runs), itoa(noisy), pct(noisy, cfg.Runs))
	}
	return []*Table{t}, nil
}
