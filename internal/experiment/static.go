package experiment

import (
	"mtbench/internal/core"
	"mtbench/internal/repository"
	"mtbench/internal/sched"
	"mtbench/internal/staticinfo"
)

// E8 — static analysis feeding the instrumentor (§2.1/§3: statics find
// defects directly, and tell the instrumentor which probes matter;
// pruning thread-local probes cuts event volume and noise overhead).

// StaticConfig parameterizes E8.
type StaticConfig struct {
	Programs []string // default: all
}

// Static runs E8: per program, the analysis results checked against
// ground truth, and the event-stream reduction from the pruning plan.
func Static(cfg StaticConfig) ([]*Table, error) {
	names := cfg.Programs
	if len(names) == 0 {
		for _, p := range repository.All() {
			names = append(names, p.Name)
		}
	}

	t := &Table{
		ID:      "E8",
		Title:   "static analysis: warnings vs ground truth, probe pruning",
		Columns: []string{"program", "vars", "shared", "local", "race_suspects", "hit", "cycles", "events_full", "events_pruned", "reduction"},
	}
	t.Note("hit = a documented bug variable appears among the race suspects")
	t.Note("events counted on one contended (round-robin) run per plan")

	sumFull, sumPruned := int64(0), int64(0)
	for _, name := range names {
		prog, err := repository.Get(name)
		if err != nil {
			return nil, err
		}
		info, err := staticinfo.ForProgram(prog)
		if err != nil {
			return nil, err
		}

		bug := map[string]bool{}
		for _, v := range prog.BugVars {
			bug[v] = true
		}
		hit := "-"
		for _, s := range info.RaceSuspects {
			if bug[s] {
				hit = "yes"
				break
			}
		}

		full := countEvents(prog, nil)
		pruned := countEvents(prog, info)
		sumFull += full
		sumPruned += pruned
		red := "-"
		if full > 0 {
			red = pct(int(full-pruned), int(full))
		}
		t.AddRow(name,
			itoa(len(info.Vars)), itoa(len(info.SharedVars)), itoa(len(info.LocalVars)),
			join(info.RaceSuspects), hit, itoa(len(info.DeadlockSuspects)),
			i64(full), i64(pruned), red)
	}
	t.Note("total events: full=%d pruned=%d (%s saved)", sumFull, sumPruned,
		pct(int(sumFull-sumPruned), int(sumFull)))
	return []*Table{t}, nil
}

// countEvents runs the program once under contention and counts
// emitted events, with or without the pruning plan.
func countEvents(prog *repository.Program, info *staticinfo.Info) int64 {
	var n int64
	cfg := sched.Config{
		Strategy:  sched.RoundRobin(),
		MaxSteps:  500_000,
		Listeners: []core.Listener{core.ListenerFunc(func(*core.Event) { n++ })},
	}
	if info != nil {
		cfg.Plan = info.Plan()
	}
	sched.Run(cfg, prog.BodyWith(nil))
	return n
}
