package experiment

import (
	"fmt"

	"mtbench/internal/multiout"
	"mtbench/internal/noise"
	"mtbench/internal/sched"
)

// E7 — the no-input, many-outcomes benchmark program (§4 component 4:
// "tools such as noise makers can be compared as to the distribution
// of their results").

// MultioutConfig parameterizes E7.
type MultioutConfig struct {
	Runs int
}

// Multiout runs E7: outcome distributions per scheduling tool.
func Multiout(cfg MultioutConfig) ([]*Table, error) {
	if cfg.Runs <= 0 {
		cfg.Runs = 100
	}
	body := multiout.Body()

	t := &Table{
		ID:      "E7",
		Title:   "multi-outcome benchmark: outcome distribution per tool",
		Columns: []string{"tool", "runs", "distinct", "entropy_bits", "top_share"},
	}
	t.Note("higher entropy = the tool spreads executions over more interleaving classes")

	tools := []struct {
		name string
		mk   func(seed int64) sched.Strategy
	}{
		{"deterministic", func(seed int64) sched.Strategy { return sched.Nonpreemptive() }},
		{"dispatch-random", func(seed int64) sched.Strategy { return sched.RandomWhenBlocked(seed) }},
		{"noise-yield-0.1", func(seed int64) sched.Strategy {
			return noise.NewStrategy(nil, noise.NewBernoulli(0.1, noise.KindYield), seed)
		}},
		{"noise-yield-0.4", func(seed int64) sched.Strategy {
			return noise.NewStrategy(nil, noise.NewBernoulli(0.4, noise.KindYield), seed)
		}},
		{"random", func(seed int64) sched.Strategy { return sched.Random(seed) }},
		{"pct-d3", func(seed int64) sched.Strategy { return sched.PriorityRandom(seed, 3, 2000) }},
	}

	for _, tool := range tools {
		dist := multiout.Distribution{}
		for seed := int64(0); seed < int64(cfg.Runs); seed++ {
			dist.Add(sched.Run(sched.Config{Strategy: tool.mk(seed)}, body))
		}
		top := 0
		for _, c := range dist {
			if c > top {
				top = c
			}
		}
		t.AddRow(tool.name, itoa(cfg.Runs), itoa(dist.Distinct()),
			fmt.Sprintf("%.2f", dist.Entropy()), pct(top, cfg.Runs))
	}
	return []*Table{t}, nil
}
