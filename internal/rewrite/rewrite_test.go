package rewrite

import (
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// rewriteSrc rewrites a single-file package from source text.
func rewriteSrc(t *testing.T, src string) (*Result, error) {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "main.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return Rewrite(dir)
}

const header = `//mtbench:kind race
//mtbench:synopsis test program
package p

`

func TestMetaDirectivesRequired(t *testing.T) {
	_, err := rewriteSrc(t, "package p\n\nfunc Main() {}\n")
	if err == nil || !strings.Contains(err.Error(), "directives are required") {
		t.Fatalf("err = %v, want missing-directive error", err)
	}
}

func TestUnknownKindRejected(t *testing.T) {
	_, err := rewriteSrc(t, "//mtbench:kind heisenbug\n//mtbench:synopsis x\npackage p\n\nfunc Main() {}\n")
	if err == nil || !strings.Contains(err.Error(), "unknown kind") {
		t.Fatalf("err = %v, want unknown-kind error", err)
	}
}

func TestUnsupportedImportRejected(t *testing.T) {
	_, err := rewriteSrc(t, header+"import \"fmt\"\n\nfunc Main() { fmt.Println(1) }\n")
	if err == nil || !strings.Contains(err.Error(), "unsupported import") {
		t.Fatalf("err = %v, want unsupported-import error", err)
	}
}

func TestMainRequired(t *testing.T) {
	_, err := rewriteSrc(t, header+"func helper() {}\n")
	if err == nil || !strings.Contains(err.Error(), "no func Main") {
		t.Fatalf("err = %v, want missing-Main error", err)
	}
}

func TestSelectDefaultRejected(t *testing.T) {
	_, err := rewriteSrc(t, header+`func Main() {
	ch := make(chan int, 1)
	select {
	case <-ch:
	default:
	}
}
`)
	if err == nil || !strings.Contains(err.Error(), "select with default") {
		t.Fatalf("err = %v, want select-default error", err)
	}
}

func TestBoolVarRejected(t *testing.T) {
	_, err := rewriteSrc(t, header+"var flag bool\n\nfunc Main() { flag = true }\n")
	if err == nil || !strings.Contains(err.Error(), "model flags as int") {
		t.Fatalf("err = %v, want bool-var error", err)
	}
}

func TestMethodsRejected(t *testing.T) {
	_, err := rewriteSrc(t, header+`type box struct{ n int }

func (b *box) get() int { return b.n }

func Main() {}
`)
	if err == nil || !strings.Contains(err.Error(), "methods are unsupported") {
		t.Fatalf("err = %v, want methods error", err)
	}
}

func TestEscapingLocalInstrumented(t *testing.T) {
	res, err := rewriteSrc(t, header+`func Main() {
	count := 0
	done := make(chan int)
	go func() {
		count = 1
		done <- 0
	}()
	<-done
	count++
	_ = count
}
`)
	if err != nil {
		t.Fatal(err)
	}
	// count escapes into the goroutine: instrumented and shared.
	if !reflect.DeepEqual(res.SharedVars, []string{"count"}) {
		t.Fatalf("SharedVars = %v, want [count]", res.SharedVars)
	}
	if len(res.LocalVars) != 0 {
		t.Fatalf("LocalVars = %v, want none", res.LocalVars)
	}
	prog := string(res.Files["prog.go"])
	if !strings.Contains(prog, `_t.NewInt("count", 0)`) {
		t.Fatalf("escaping local not instrumented:\n%s", prog)
	}
}

func TestNonEscapingLocalStaysPlain(t *testing.T) {
	res, err := rewriteSrc(t, header+`var total int

func Main() {
	go func() { total = 1 }()
	scratch := 41
	scratch++
	total = scratch
}
`)
	if err != nil {
		t.Fatal(err)
	}
	prog := string(res.Files["prog.go"])
	if !strings.Contains(prog, "scratch := 41") || !strings.Contains(prog, "scratch++") {
		t.Fatalf("non-escaping local was rewritten:\n%s", prog)
	}
	if strings.Contains(prog, `NewInt("scratch"`) {
		t.Fatalf("non-escaping local got a probe:\n%s", prog)
	}
}

func TestMainConfinedVarPruned(t *testing.T) {
	res, err := rewriteSrc(t, header+`var hot int

var cold int

func Main() {
	go func() { hot = 1 }()
	cold = 2
	_ = hot
	_ = cold
}
`)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.SharedVars, []string{"hot"}) {
		t.Fatalf("SharedVars = %v, want [hot]", res.SharedVars)
	}
	if !reflect.DeepEqual(res.LocalVars, []string{"cold"}) {
		t.Fatalf("LocalVars = %v, want [cold]", res.LocalVars)
	}
	reg := string(res.Files["register.go"])
	if !strings.Contains(reg, `instrument.All().OnlyObjects("hot")`) {
		t.Fatalf("plan literal missing:\n%s", reg)
	}
}

// TestClosureValueDisablesPruning: a closure stored in a variable can
// carry accesses anywhere, so the escape verdicts degrade to
// everything-shared and no plan is emitted.
func TestClosureValueDisablesPruning(t *testing.T) {
	res, err := rewriteSrc(t, header+`var quiet int

func Main() {
	bump := func() { quiet++ }
	go func() { bump() }()
	bump()
}
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.LocalVars) != 0 {
		t.Fatalf("unsound pruning with a closure value: LocalVars = %v", res.LocalVars)
	}
	if strings.Contains(string(res.Files["register.go"]), "OnlyObjects") {
		t.Fatalf("plan emitted despite unresolved closure:\n%s", res.Files["register.go"])
	}
}

func TestSpawnReachableCalleeShares(t *testing.T) {
	res, err := rewriteSrc(t, header+`var n int

func bump() { n++ }

func helper() { bump() }

func Main() {
	go helper()
	_ = n
}
`)
	if err != nil {
		t.Fatal(err)
	}
	// n is touched through go helper() -> bump(): shared transitively.
	if !reflect.DeepEqual(res.SharedVars, []string{"n"}) {
		t.Fatalf("SharedVars = %v, want [n] (transitive spawn reachability)", res.SharedVars)
	}
}

func TestThreadsCount(t *testing.T) {
	for _, tc := range []struct {
		name string
		want int
	}{
		{"lockorder", 3}, {"bankaccount", 3}, {"notifier", 2}, {"pipeline", 3},
	} {
		res, err := Rewrite(filepath.Join("testdata", "src", tc.name))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if res.Threads != tc.want {
			t.Errorf("%s: Threads = %d, want %d", tc.name, res.Threads, tc.want)
		}
	}
}

// TestPlanMatchesStaticinfo pins that the rewrite layer's pruning plan
// is built through the same staticinfo path the hand-written programs
// use.
func TestPlanMatchesStaticinfo(t *testing.T) {
	dir := t.TempDir()
	src := header + `var hot int

var cold int

func Main() {
	go func() { hot = 1 }()
	cold = 2
	_ = hot
	_ = cold
}
`
	if err := os.WriteFile(filepath.Join(dir, "main.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	r := &rewriter{
		dir:          dir,
		fset:         token.NewFileSet(),
		objects:      map[types.Object]*object{},
		escaping:     map[types.Object]bool{},
		spawnedFuncs: map[types.Object]bool{},
		usedNames:    map[string]int{},
	}
	if err := r.load(); err != nil {
		t.Fatal(err)
	}
	r.validateImports()
	r.classifyPkgVars()
	r.analyzeFuncs()
	if err := r.firstErr(); err != nil {
		t.Fatal(err)
	}
	info := r.planFor()
	if !reflect.DeepEqual(info.SharedVars, []string{"hot"}) || !reflect.DeepEqual(info.LocalVars, []string{"cold"}) {
		t.Fatalf("staticinfo verdicts: shared=%v local=%v", info.SharedVars, info.LocalVars)
	}
	if info.Plan() == nil {
		t.Fatal("staticinfo plan is nil despite shared vars")
	}
}
