package rewrite

import (
	"fmt"
	"sort"
	"strings"
)

// Meta is the benchmark metadata an input package declares through
// //mtbench: directives in its source (conventionally in the package
// doc comment). It becomes the generated repository.Program entry.
type Meta struct {
	// Name is the registry name (defaults to the package name).
	Name string
	// Kind is the documented bug class; must match a repository.Kind.
	Kind string
	// Synopsis is the one-line description (required).
	Synopsis string
	// Doc is the multi-line bug documentation, joined from
	// //mtbench:doc lines.
	Doc string
	// BugVars are the objects participating in the documented bug.
	BugVars []string
}

// knownKinds mirrors the repository.Kind* constants; the rewriter
// validates directives at generation time so a typo fails the rewrite
// rather than registering an unclassifiable program.
var knownKinds = map[string]string{
	"none":                "KindNone",
	"race":                "KindRace",
	"atomicity-violation": "KindAtomicity",
	"order-violation":     "KindOrder",
	"deadlock":            "KindDeadlock",
	"notify":              "KindNotify",
	"livelock":            "KindLivelock",
}

// parseMeta scans raw file contents for //mtbench: directive lines.
// Sources are visited in file-name order, so directives land in a
// deterministic order regardless of which file carries them.
func parseMeta(pkgName string, sources [][]byte) (*Meta, error) {
	m := &Meta{Name: pkgName}
	var docLines []string
	for _, src := range sources {
		for _, line := range strings.Split(string(src), "\n") {
			line = strings.TrimSpace(line)
			rest, ok := strings.CutPrefix(line, "//mtbench:")
			if !ok {
				continue
			}
			key, val, _ := strings.Cut(rest, " ")
			val = strings.TrimSpace(val)
			switch key {
			case "name":
				m.Name = val
			case "kind":
				m.Kind = val
			case "synopsis":
				m.Synopsis = val
			case "doc":
				docLines = append(docLines, val)
			case "bugvars":
				for _, v := range strings.Split(val, ",") {
					if v = strings.TrimSpace(v); v != "" {
						m.BugVars = append(m.BugVars, v)
					}
				}
			default:
				return nil, fmt.Errorf("unknown directive //mtbench:%s", key)
			}
		}
	}
	m.Doc = strings.Join(docLines, " ")
	if m.Kind == "" || m.Synopsis == "" {
		return nil, fmt.Errorf("package %s: //mtbench:kind and //mtbench:synopsis directives are required", pkgName)
	}
	if _, ok := knownKinds[m.Kind]; !ok {
		kinds := make([]string, 0, len(knownKinds))
		for k := range knownKinds {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		return nil, fmt.Errorf("package %s: unknown kind %q (have %v)", pkgName, m.Kind, kinds)
	}
	sort.Strings(m.BugVars)
	return m, nil
}
