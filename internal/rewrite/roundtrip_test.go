package rewrite_test

import (
	"testing"

	"mtbench/internal/core"
	"mtbench/internal/explore"
	"mtbench/internal/repository"
	"mtbench/internal/sched"

	_ "mtbench/internal/genprog"
)

// TestRoundTrip closes the loop over every generated example package:
// the checked-in instrumented package registers itself, exploration
// finds its planted bug, and replaying the failing schedule through
// FixedSchedule reproduces the identical verdict — rewrite output is a
// first-class citizen of the record/replay machinery.
func TestRoundTrip(t *testing.T) {
	for _, name := range []string{"bankaccount", "lockorder", "notifier", "pipeline"} {
		t.Run(name, func(t *testing.T) {
			prog, err := repository.Get(name)
			if err != nil {
				t.Fatal(err)
			}
			if !prog.HasBug() {
				t.Fatalf("%s registered without a bug kind", name)
			}
			body := prog.BodyWith(nil)
			res := explore.Explore(explore.Options{
				MaxSchedules:   5000,
				Workers:        1,
				DPOR:           true,
				StateCache:     true,
				StopAtFirstBug: true,
				Name:           name,
				Plan:           prog.Plan,
			}, body)
			if res.Err != nil {
				t.Fatal(res.Err)
			}
			if len(res.Bugs) == 0 {
				t.Fatalf("exploration missed the planted bug (%d schedules, exhausted=%v)",
					res.Schedules, res.Exhausted)
			}
			bug := res.Bugs[0]
			want := core.BugSignature(bug.Result)

			rep := sched.Run(sched.Config{
				Strategy: &sched.FixedSchedule{Decisions: bug.Schedule},
				Name:     name,
				Plan:     prog.Plan,
			}, body)
			if !rep.Verdict.Bug() {
				t.Fatalf("replay verdict %v is not a bug", rep.Verdict)
			}
			if got := core.BugSignature(rep); got != want {
				t.Fatalf("replay signature diverged:\n  explore: %s\n  replay:  %s", want, got)
			}
		})
	}
}

// TestGeneratedPlanGate pins that generated programs carry their
// escape-analysis plan into the registry: bankaccount's main-confined
// audits variable must be pruned while balance keeps its probes.
func TestGeneratedPlanGate(t *testing.T) {
	prog, err := repository.Get("bankaccount")
	if err != nil {
		t.Fatal(err)
	}
	if prog.Plan == nil {
		t.Fatal("bankaccount registered without an instrumentation plan")
	}
	if !prog.Plan.Enabled(core.OpRead, "balance") {
		t.Error("plan prunes balance (bug variable must keep probes)")
	}
	if prog.Plan.Enabled(core.OpRead, "audits") {
		t.Error("plan keeps audits (main-confined variable should be pruned)")
	}
}
