// Package pipeline squares numbers through a two-stage channel
// pipeline and shuts the drainer down over a quit channel that races
// the drain: depending on the schedule the program loses work or
// deadlocks on the quit handshake.
//
//mtbench:kind order-violation
//mtbench:synopsis quit message races the pipeline drain (lost work or stuck quit)
//mtbench:bugvars sum
//mtbench:doc The squarer ranges over work and closes out; the drainer
//mtbench:doc selects between out and quit. Main sends quit as soon as
//mtbench:doc it has queued the work: if the drainer takes quit while
//mtbench:doc out still holds elements, sum comes up short; if the
//mtbench:doc drainer exits on the closed out channel first, nobody
//mtbench:doc ever receives quit and Main blocks forever.
package pipeline

func Main() {
	work := make(chan int, 2)
	out := make(chan int, 2)
	quit := make(chan int)
	sum := 0
	go func() {
		for v := range work {
			out <- v * v
		}
		close(out)
	}()
	go func() {
		for {
			select {
			case v, ok := <-out:
				if !ok {
					return
				}
				sum += v
			case <-quit:
				return
			}
		}
	}()
	work <- 2
	work <- 3
	close(work)
	quit <- 0
	if sum != 13 {
		panic("partial sum")
	}
}
