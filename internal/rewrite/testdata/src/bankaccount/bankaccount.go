// Package bankaccount performs two unsynchronized deposits: each is a
// read-modify-write through a local temporary, so an interleaving that
// splits one deposit across the other loses an update.
//
//mtbench:kind atomicity-violation
//mtbench:synopsis read-modify-write deposits without a lock (lost update)
//mtbench:bugvars balance
//mtbench:doc deposit copies balance into a local, adds, and stores the
//mtbench:doc local back. Two deposits interleaved at the copy both read
//mtbench:doc the same balance and one update is lost; Main's check then
//mtbench:doc fails. audits is only ever touched by the main thread, so
//mtbench:doc the escape analysis prunes its probes from the plan.
package bankaccount

import "sync"

var balance int

var audits int

func deposit(amount int) {
	b := balance
	b += amount
	balance = b
}

// Main is the entry point the rewriter instruments.
func Main() {
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		deposit(10)
		wg.Done()
	}()
	go func() {
		deposit(10)
		wg.Done()
	}()
	wg.Wait()
	audits++
	if balance != 20 {
		panic("lost update")
	}
}
