// Package notifier signals a condition variable that may have no
// waiter yet: a signal with nobody waiting is lost, and the waiter
// that arrives afterwards sleeps forever.
//
//mtbench:kind notify
//mtbench:synopsis signal with no waiter is lost; the late waiter sleeps forever
//mtbench:bugvars done
//mtbench:doc The producer takes mu, publishes sent and signals done.
//mtbench:doc Main waits on done without re-checking state first: if the
//mtbench:doc producer's signal fired before Main reached Wait, the
//mtbench:doc wakeup is lost and Main blocks forever (lost-notify
//mtbench:doc deadlock). Schedules where Main waits first pass.
package notifier

import "sync"

var (
	mu   sync.Mutex
	done = sync.NewCond(&mu)
	sent int
)

// Main is the entry point the rewriter instruments.
func Main() {
	go func() {
		mu.Lock()
		sent = 1
		done.Signal()
		mu.Unlock()
	}()
	mu.Lock()
	done.Wait()
	if sent != 1 {
		panic("woke without payload")
	}
	mu.Unlock()
}
