// Package lockorder transfers between two accounts with inconsistent
// lock ordering: one thread takes muA then muB, the other muB then muA
// — the classic AB-BA deadlock window.
//
//mtbench:kind deadlock
//mtbench:synopsis two mutexes taken in opposite orders (AB-BA deadlock)
//mtbench:bugvars muA,muB
//mtbench:doc transferAB locks muA then muB while transferBA locks muB
//mtbench:doc then muA. A schedule that parks each thread between its
//mtbench:doc two acquisitions leaves both waiting on the other's lock.
package lockorder

import "sync"

var (
	muA sync.Mutex
	muB sync.Mutex
	a   = 100
	b   = 100
)

func transferAB(amt int) {
	muA.Lock()
	muB.Lock()
	a -= amt
	b += amt
	muB.Unlock()
	muA.Unlock()
}

func transferBA(amt int) {
	muB.Lock()
	muA.Lock()
	b -= amt
	a += amt
	muA.Unlock()
	muB.Unlock()
}

// Main is the entry point the rewriter instruments.
func Main() {
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		transferAB(10)
		wg.Done()
	}()
	go func() {
		transferBA(10)
		wg.Done()
	}()
	wg.Wait()
	if a+b != 200 {
		panic("conservation violated")
	}
}
