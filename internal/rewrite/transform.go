package rewrite

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
)

// ---------------------------------------------------------------------------
// Small AST constructors. All generated nodes are position-free; the
// emitter runs the whole file through format.Source afterwards.

func id(name string) *ast.Ident { return ast.NewIdent(name) }

func tArg() ast.Expr { return id("_t") }

func sel(x ast.Expr, name string) *ast.SelectorExpr {
	return &ast.SelectorExpr{X: x, Sel: id(name)}
}

func call(fun ast.Expr, args ...ast.Expr) *ast.CallExpr {
	return &ast.CallExpr{Fun: fun, Args: args}
}

func strLit(s string) *ast.BasicLit {
	return &ast.BasicLit{Kind: token.STRING, Value: strconv.Quote(s)}
}

func intLit(n int) *ast.BasicLit {
	return &ast.BasicLit{Kind: token.INT, Value: strconv.Itoa(n)}
}

func exprStmt(e ast.Expr) ast.Stmt { return &ast.ExprStmt{X: e} }

// coreT is the `func(_t core.T)` type used by generated thread bodies.
func coreT() *ast.FuncType {
	return &ast.FuncType{Params: &ast.FieldList{List: []*ast.Field{
		{Names: []*ast.Ident{id("_t")}, Type: sel(id("core"), "T")},
	}}}
}

// generic instantiates a generic helper: _recv[T].
func generic(fn, typ string) ast.Expr {
	return &ast.IndexExpr{X: id(fn), Index: id(typ)}
}

// ---------------------------------------------------------------------------
// Object resolution.

// lookupObj maps an expression to the instrumented object it names, if
// any: a bare identifier, or &x over one.
func (r *rewriter) lookupObj(e ast.Expr) *object {
	switch x := e.(type) {
	case *ast.Ident:
		if use := r.info.Uses[x]; use != nil {
			return r.objects[use]
		}
		if def := r.info.Defs[x]; def != nil {
			return r.objects[def]
		}
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return r.lookupObj(x.X)
		}
	case *ast.ParenExpr:
		return r.lookupObj(x.X)
	}
	return nil
}

// objExpr is the generated reference to an instrumented object.
func objExpr(o *object) ast.Expr {
	if o.pkgLevel {
		return sel(id("_s"), o.goName)
	}
	return id(o.goName)
}

// chanElem returns the element type of a channel-typed expression.
func (r *rewriter) chanElem(e ast.Expr) string {
	if o := r.lookupObj(e); o != nil && o.kind == objChan {
		return o.elem
	}
	if tv, ok := r.info.Types[e]; ok {
		if ch, ok := tv.Type.Underlying().(*types.Chan); ok {
			return r.typeStr(ch.Elem())
		}
	}
	return ""
}

// chanExpr rewrites an expression that must denote a channel object.
func (r *rewriter) chanExpr(e ast.Expr) ast.Expr {
	o := r.lookupObj(e)
	if o == nil || o.kind != objChan {
		r.errf(e.Pos(), "channel expression must name a channel variable")
		return e
	}
	return objExpr(o)
}

// intStoreVal wraps a stored value in int64(...) when needed.
func (r *rewriter) intStoreVal(o *object, e ast.Expr) ast.Expr {
	if o.intKind == types.Int64 {
		return e
	}
	if _, isLit := e.(*ast.BasicLit); isLit {
		return e
	}
	return call(id("int64"), e)
}

// loadExpr reads an instrumented data object.
func (r *rewriter) loadExpr(o *object) ast.Expr {
	load := call(sel(objExpr(o), "Load"), tArg())
	switch o.kind {
	case objInt:
		if o.intKind == types.Int {
			return call(id("int"), load)
		}
		return load
	case objRef:
		return &ast.TypeAssertExpr{X: load, Type: id(o.refType)}
	}
	return load
}

// storeStmt writes an instrumented data object.
func (r *rewriter) storeStmt(o *object, val ast.Expr) ast.Stmt {
	if o.kind == objInt {
		val = r.intStoreVal(o, val)
	}
	return exprStmt(call(sel(objExpr(o), "Store"), tArg(), val))
}

// objMethods lists the translatable methods per kind.
var objMethods = map[objKind]map[string]bool{
	objMutex: {"Lock": true, "Unlock": true, "TryLock": true},
	objRW:    {"Lock": true, "Unlock": true, "RLock": true, "RUnlock": true},
	objWG:    {"Add": true, "Done": true, "Wait": true},
	objCond:  {"Wait": true, "Signal": true, "Broadcast": true},
	objChan:  {"Send": true, "Recv": true, "Close": true},
}

// ---------------------------------------------------------------------------
// Expression rewriting.

func (r *rewriter) rxList(es []ast.Expr) []ast.Expr {
	out := make([]ast.Expr, len(es))
	for i, e := range es {
		out[i] = r.rx(e)
	}
	return out
}

// rx rewrites an expression for the instrumented package.
func (r *rewriter) rx(e ast.Expr) ast.Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case *ast.Ident:
		if o := r.lookupObj(x); o != nil {
			if o.isData() {
				return r.loadExpr(o)
			}
			return objExpr(o)
		}
		if use := r.info.Uses[x]; use != nil {
			if fn, ok := use.(*types.Func); ok && fn.Pkg() == r.pkg {
				r.errf(x.Pos(), "package function %s used as a value is unsupported", x.Name)
			}
		}
		return id(x.Name)
	case *ast.BasicLit:
		return x
	case *ast.ParenExpr:
		return &ast.ParenExpr{X: r.rx(x.X)}
	case *ast.UnaryExpr:
		if x.Op == token.ARROW {
			elem := r.chanElem(x.X)
			r.needRecv1 = true
			return call(generic("_recv1", elem), tArg(), r.chanExpr(x.X))
		}
		if x.Op == token.AND {
			if o := r.lookupObj(x.X); o != nil && !o.isData() {
				return objExpr(o) // core objects are already references
			}
			if o := r.lookupObj(x.X); o != nil {
				r.errf(x.Pos(), "taking the address of instrumented variable %s is unsupported", o.goName)
				return x
			}
		}
		return &ast.UnaryExpr{Op: x.Op, X: r.rx(x.X)}
	case *ast.BinaryExpr:
		return &ast.BinaryExpr{X: r.rx(x.X), Op: x.Op, Y: r.rx(x.Y)}
	case *ast.CallExpr:
		return r.rxCall(x)
	case *ast.FuncLit:
		return r.rxFuncLit(x)
	case *ast.IndexExpr:
		return &ast.IndexExpr{X: r.rx(x.X), Index: r.rx(x.Index)}
	case *ast.SliceExpr:
		return &ast.SliceExpr{X: r.rx(x.X), Low: r.rx(x.Low), High: r.rx(x.High), Max: r.rx(x.Max), Slice3: x.Slice3}
	case *ast.SelectorExpr:
		return &ast.SelectorExpr{X: r.rx(x.X), Sel: id(x.Sel.Name)}
	case *ast.StarExpr:
		return &ast.StarExpr{X: r.rx(x.X)}
	case *ast.CompositeLit:
		return &ast.CompositeLit{Type: x.Type, Elts: r.rxList(x.Elts)}
	case *ast.KeyValueExpr:
		return &ast.KeyValueExpr{Key: x.Key, Value: r.rx(x.Value)}
	case *ast.TypeAssertExpr:
		return &ast.TypeAssertExpr{X: r.rx(x.X), Type: x.Type}
	case *ast.ArrayType, *ast.MapType, *ast.StructType, *ast.FuncType, *ast.InterfaceType:
		return e
	}
	// Fallback: leave the node, but refuse if an instrumented variable
	// hides inside it.
	ast.Inspect(e, func(n ast.Node) bool {
		if ident, ok := n.(*ast.Ident); ok {
			if o := r.lookupObj(ident); o != nil {
				r.errf(ident.Pos(), "instrumented variable %s in unsupported expression", o.goName)
			}
		}
		return true
	})
	return e
}

// rxCall rewrites a call expression.
func (r *rewriter) rxCall(x *ast.CallExpr) ast.Expr {
	switch fun := x.Fun.(type) {
	case *ast.Ident:
		switch use := r.info.Uses[fun].(type) {
		case *types.Builtin:
			switch fun.Name {
			case "close", "panic":
				r.errf(x.Pos(), "%s is only supported in statement position", fun.Name)
				return x
			case "make":
				r.errf(x.Pos(), "channels must be created at a declaration site (x := make(chan T))")
				return x
			case "len", "cap":
				if r.lookupObj(x.Args[0]) != nil {
					r.errf(x.Pos(), "%s over an instrumented object is unsupported", fun.Name)
					return x
				}
			}
			return call(id(fun.Name), r.rxList(x.Args)...)
		case *types.TypeName:
			return call(id(fun.Name), r.rxList(x.Args)...)
		case *types.Func:
			if use.Pkg() == r.pkg {
				args := append([]ast.Expr{tArg()}, r.rxList(x.Args)...)
				return call(sel(id("_s"), fun.Name), args...)
			}
			r.errf(x.Pos(), "call to external function %s is unsupported", fun.Name)
			return x
		default:
			// Local closure variable: the literal was rewritten where
			// it was built; the call stays a plain Go call.
			return call(id(fun.Name), r.rxList(x.Args)...)
		}
	case *ast.SelectorExpr:
		if base, ok := fun.X.(*ast.Ident); ok {
			if o := r.lookupObj(base); o != nil {
				return r.rxMethod(x, o, fun.Sel.Name)
			}
			if base.Name == "sync" {
				r.errf(x.Pos(), "sync.%s is only supported at a declaration site", fun.Sel.Name)
				return x
			}
		}
		return call(&ast.SelectorExpr{X: r.rx(fun.X), Sel: id(fun.Sel.Name)}, r.rxList(x.Args)...)
	case *ast.FuncLit:
		return call(r.rxFuncLit(fun), r.rxList(x.Args)...)
	}
	r.errf(x.Pos(), "unsupported call form")
	return x
}

// rxMethod rewrites obj.Method(args) into the core API shape.
func (r *rewriter) rxMethod(x *ast.CallExpr, o *object, name string) ast.Expr {
	if !objMethods[o.kind][name] {
		r.errf(x.Pos(), "method %s is not supported on %s", name, o.goName)
		return x
	}
	args := append([]ast.Expr{tArg()}, r.rxList(x.Args)...)
	return call(sel(objExpr(o), name), args...)
}

// rxFuncLit rewrites a function literal's body (params stay plain Go;
// sync/chan-typed literal params are rejected).
func (r *rewriter) rxFuncLit(x *ast.FuncLit) *ast.FuncLit {
	if x.Type.Params != nil {
		for _, field := range x.Type.Params.List {
			for _, name := range field.Names {
				if def := r.info.Defs[name]; def != nil {
					if _, ok := syncKind(def.Type()); ok {
						r.errf(name.Pos(), "sync-typed literal parameter %s is unsupported", name.Name)
					}
					if _, ok := def.Type().(*types.Chan); ok {
						r.errf(name.Pos(), "channel-typed literal parameter %s is unsupported", name.Name)
					}
				}
			}
		}
	}
	return &ast.FuncLit{Type: x.Type, Body: r.rsBlock(x.Body)}
}

// ---------------------------------------------------------------------------
// Statement rewriting.

func (r *rewriter) rsBlock(b *ast.BlockStmt) *ast.BlockStmt {
	if b == nil {
		return nil
	}
	return &ast.BlockStmt{List: r.rsList(b.List)}
}

func (r *rewriter) rsList(stmts []ast.Stmt) []ast.Stmt {
	var out []ast.Stmt
	for _, s := range stmts {
		out = append(out, r.rs(s)...)
	}
	return out
}

// rsOne rewrites a statement that must stay a single statement
// (if/for/switch init positions), wrapping expansions in a block where
// the caller allows it via the surrounding rewrite.
func (r *rewriter) rsOne(s ast.Stmt) (ast.Stmt, []ast.Stmt) {
	if s == nil {
		return nil, nil
	}
	stmts := r.rs(s)
	if len(stmts) == 1 {
		return stmts[0], nil
	}
	return nil, stmts
}

// rs rewrites one statement into its instrumented form.
func (r *rewriter) rs(s ast.Stmt) []ast.Stmt {
	switch x := s.(type) {
	case *ast.ExprStmt:
		return []ast.Stmt{r.rsExprStmt(x)}
	case *ast.SendStmt:
		return []ast.Stmt{exprStmt(call(sel(r.chanExpr(x.Chan), "Send"), tArg(), r.rx(x.Value)))}
	case *ast.IncDecStmt:
		if o := r.lookupObj(x.X); o != nil {
			if o.kind != objInt {
				r.errf(x.Pos(), "%s on non-integer instrumented variable", x.Tok)
				return []ast.Stmt{x}
			}
			delta := intLit(1)
			if x.Tok == token.DEC {
				return []ast.Stmt{exprStmt(call(sel(objExpr(o), "Add"), tArg(), &ast.UnaryExpr{Op: token.SUB, X: delta}))}
			}
			return []ast.Stmt{exprStmt(call(sel(objExpr(o), "Add"), tArg(), delta))}
		}
		return []ast.Stmt{&ast.IncDecStmt{X: r.rx(x.X), Tok: x.Tok}}
	case *ast.AssignStmt:
		return r.rsAssign(x)
	case *ast.DeclStmt:
		return r.rsDecl(x)
	case *ast.GoStmt:
		return r.rsGo(x)
	case *ast.DeferStmt:
		return r.rsDefer(x)
	case *ast.ReturnStmt:
		return []ast.Stmt{&ast.ReturnStmt{Results: r.rxList(x.Results)}}
	case *ast.IfStmt:
		return r.rsIf(x)
	case *ast.ForStmt:
		return r.rsFor(x)
	case *ast.RangeStmt:
		return r.rsRange(x)
	case *ast.SelectStmt:
		return r.rsSelect(x)
	case *ast.SwitchStmt:
		return r.rsSwitch(x)
	case *ast.BlockStmt:
		return []ast.Stmt{r.rsBlock(x)}
	case *ast.BranchStmt, *ast.EmptyStmt:
		return []ast.Stmt{s}
	case *ast.LabeledStmt:
		inner, expanded := r.rsOne(x.Stmt)
		if inner == nil {
			inner = &ast.BlockStmt{List: expanded}
		}
		return []ast.Stmt{&ast.LabeledStmt{Label: id(x.Label.Name), Stmt: inner}}
	}
	r.errf(s.Pos(), "unsupported statement")
	return []ast.Stmt{s}
}

// rsExprStmt handles statement-position calls: panic and close get
// special translations.
func (r *rewriter) rsExprStmt(x *ast.ExprStmt) ast.Stmt {
	if c, ok := x.X.(*ast.CallExpr); ok {
		if fn, ok := c.Fun.(*ast.Ident); ok {
			if _, isBuiltin := r.info.Uses[fn].(*types.Builtin); isBuiltin {
				switch fn.Name {
				case "panic":
					// A panic is the program's bug oracle: report it as
					// a controlled failure instead of unwinding.
					args := append([]ast.Expr{strLit("panic: %v")}, r.rxList(c.Args)...)
					return exprStmt(call(sel(tArg(), "Failf"), args...))
				case "close":
					return exprStmt(call(sel(r.chanExpr(c.Args[0]), "Close"), tArg()))
				}
			}
		}
	}
	return exprStmt(r.rx(x.X))
}

// rsDefer rewrites the deferred call through the expression rules.
func (r *rewriter) rsDefer(x *ast.DeferStmt) []ast.Stmt {
	rewritten := r.rsExprStmt(&ast.ExprStmt{X: x.Call})
	es, ok := rewritten.(*ast.ExprStmt)
	if !ok {
		r.errf(x.Pos(), "unsupported defer")
		return []ast.Stmt{x}
	}
	c, ok := es.X.(*ast.CallExpr)
	if !ok {
		r.errf(x.Pos(), "unsupported defer")
		return []ast.Stmt{x}
	}
	return []ast.Stmt{&ast.DeferStmt{Call: c}}
}

// creationStmts emits the statements that create a local instrumented
// object, consuming its declaration site.
func (r *rewriter) creationStmts(o *object, lhs *ast.Ident, init ast.Expr) []ast.Stmt {
	define := func(rhs ast.Expr) ast.Stmt {
		return &ast.AssignStmt{Lhs: []ast.Expr{id(lhs.Name)}, Tok: token.DEFINE, Rhs: []ast.Expr{rhs}}
	}
	switch o.kind {
	case objMutex:
		return []ast.Stmt{define(call(sel(tArg(), "NewMutex"), strLit(o.objName)))}
	case objRW:
		return []ast.Stmt{define(call(sel(tArg(), "NewRWMutex"), strLit(o.objName)))}
	case objWG:
		return []ast.Stmt{define(call(sel(tArg(), "NewWaitGroup"), strLit(o.objName)))}
	case objCond:
		mu := r.objects[o.condMu]
		if mu == nil {
			r.errf(lhs.Pos(), "%s: condition variable over an uninstrumented mutex", o.goName)
			return nil
		}
		return []ast.Stmt{define(call(sel(tArg(), "NewCond"), strLit(o.objName), objExpr(mu)))}
	case objChan:
		capExpr := ast.Expr(intLit(0))
		if o.capExpr != nil {
			capExpr = r.rx(o.capExpr)
		}
		return []ast.Stmt{define(call(sel(tArg(), "NewChan"), strLit(o.objName), capExpr))}
	case objInt:
		initVal := ast.Expr(intLit(0))
		if init != nil {
			initVal = r.intStoreVal(o, r.rx(init))
		}
		return []ast.Stmt{define(call(sel(tArg(), "NewInt"), strLit(o.objName), initVal))}
	case objRef:
		stmts := []ast.Stmt{define(call(sel(tArg(), "NewRef"), strLit(o.objName)))}
		if init != nil {
			stmts = append(stmts, exprStmt(call(sel(id(lhs.Name), "Store"), tArg(), r.rx(init))))
		}
		return stmts
	}
	return nil
}

// rsAssign rewrites assignments: creation sites, channel receives,
// stores into instrumented variables, and plain assignments.
func (r *rewriter) rsAssign(x *ast.AssignStmt) []ast.Stmt {
	// Creation site for an instrumented local?
	if x.Tok == token.DEFINE && len(x.Lhs) == 1 && len(x.Rhs) == 1 {
		if lhs, ok := x.Lhs[0].(*ast.Ident); ok {
			if def := r.info.Defs[lhs]; def != nil {
				if o := r.objects[def]; o != nil {
					return r.creationStmts(o, lhs, x.Rhs[0])
				}
			}
		}
	}
	// Channel receive on the right?
	if len(x.Rhs) == 1 {
		if un, ok := x.Rhs[0].(*ast.UnaryExpr); ok && un.Op == token.ARROW {
			return r.rsRecvAssign(x, un)
		}
	}
	// Store into an instrumented variable?
	if len(x.Lhs) == 1 && len(x.Rhs) == 1 && x.Tok != token.DEFINE {
		if o := r.lookupObj(x.Lhs[0]); o != nil {
			return r.rsStore(x, o)
		}
	}
	// Plain assignment: instrumented variables may not appear on the
	// left of multi-assignments.
	for _, l := range x.Lhs {
		if o := r.lookupObj(l); o != nil && x.Tok != token.DEFINE {
			r.errf(x.Pos(), "instrumented variable %s in a multi-assignment is unsupported", o.goName)
			return []ast.Stmt{x}
		}
	}
	lhs := make([]ast.Expr, len(x.Lhs))
	for i, l := range x.Lhs {
		if ident, ok := l.(*ast.Ident); ok {
			lhs[i] = id(ident.Name)
		} else {
			lhs[i] = r.rx(l)
		}
	}
	return []ast.Stmt{&ast.AssignStmt{Lhs: lhs, Tok: x.Tok, Rhs: r.rxList(x.Rhs)}}
}

// rsStore handles `x = E`, `x += E`, `x -= E` on instrumented data.
func (r *rewriter) rsStore(x *ast.AssignStmt, o *object) []ast.Stmt {
	val := r.rx(x.Rhs[0])
	switch x.Tok {
	case token.ASSIGN:
		return []ast.Stmt{r.storeStmt(o, val)}
	case token.ADD_ASSIGN, token.SUB_ASSIGN:
		if o.kind != objInt {
			r.errf(x.Pos(), "%s on non-integer instrumented variable %s", x.Tok, o.goName)
			return []ast.Stmt{x}
		}
		val = r.intStoreVal(o, val)
		if x.Tok == token.SUB_ASSIGN {
			val = &ast.UnaryExpr{Op: token.SUB, X: val}
		}
		return []ast.Stmt{exprStmt(call(sel(objExpr(o), "Add"), tArg(), val))}
	}
	r.errf(x.Pos(), "%s on instrumented variable %s is unsupported", x.Tok, o.goName)
	return []ast.Stmt{x}
}

// rsRecvAssign handles `v := <-ch`, `v, ok := <-ch` and their `=`
// forms.
func (r *rewriter) rsRecvAssign(x *ast.AssignStmt, un *ast.UnaryExpr) []ast.Stmt {
	elem := r.chanElem(un.X)
	ch := r.chanExpr(un.X)
	switch len(x.Lhs) {
	case 1:
		r.needRecv1 = true
		rhs := call(generic("_recv1", elem), tArg(), ch)
		if x.Tok == token.ASSIGN {
			if o := r.lookupObj(x.Lhs[0]); o != nil {
				return []ast.Stmt{r.storeStmt(o, rhs)}
			}
		}
		return []ast.Stmt{&ast.AssignStmt{Lhs: []ast.Expr{r.plainLHS(x.Lhs[0])}, Tok: x.Tok, Rhs: []ast.Expr{rhs}}}
	case 2:
		for _, l := range x.Lhs {
			if o := r.lookupObj(l); o != nil {
				r.errf(x.Pos(), "instrumented variable %s in a comma-ok receive is unsupported", o.goName)
				return []ast.Stmt{x}
			}
		}
		r.needRecv = true
		rhs := call(generic("_recv", elem), tArg(), ch)
		return []ast.Stmt{&ast.AssignStmt{
			Lhs: []ast.Expr{r.plainLHS(x.Lhs[0]), r.plainLHS(x.Lhs[1])},
			Tok: x.Tok,
			Rhs: []ast.Expr{rhs},
		}}
	}
	r.errf(x.Pos(), "unsupported receive assignment")
	return []ast.Stmt{x}
}

func (r *rewriter) plainLHS(e ast.Expr) ast.Expr {
	if ident, ok := e.(*ast.Ident); ok {
		return id(ident.Name)
	}
	return r.rx(e)
}

// rsDecl rewrites `var ...` statements. Instrumented names become
// creation statements; plain names keep their declaration.
func (r *rewriter) rsDecl(x *ast.DeclStmt) []ast.Stmt {
	gd, ok := x.Decl.(*ast.GenDecl)
	if !ok || gd.Tok == token.TYPE {
		r.errf(x.Pos(), "unsupported declaration statement")
		return []ast.Stmt{x}
	}
	if gd.Tok == token.CONST {
		return []ast.Stmt{x}
	}
	var out []ast.Stmt
	var plain []ast.Spec
	for _, spec := range gd.Specs {
		vs := spec.(*ast.ValueSpec)
		instrumented := false
		for _, name := range vs.Names {
			if def := r.info.Defs[name]; def != nil && r.objects[def] != nil {
				instrumented = true
			}
		}
		if !instrumented {
			vals := r.rxList(vs.Values)
			plain = append(plain, &ast.ValueSpec{Names: vs.Names, Type: vs.Type, Values: vals})
			continue
		}
		if len(vs.Names) != 1 {
			r.errf(vs.Pos(), "declare instrumented variables one per statement")
			continue
		}
		name := vs.Names[0]
		o := r.objects[r.info.Defs[name]]
		var init ast.Expr
		if len(vs.Values) == 1 {
			init = vs.Values[0]
		}
		out = append(out, r.creationStmts(o, name, init)...)
	}
	if len(plain) > 0 {
		out = append(out, &ast.DeclStmt{Decl: &ast.GenDecl{Tok: token.VAR, Specs: plain}})
	}
	return out
}

// rsGo rewrites `go f(...)` / `go func(){...}()` into _t.Go with a
// deterministic thread name.
func (r *rewriter) rsGo(x *ast.GoStmt) []ast.Stmt {
	var name string
	var body []ast.Stmt
	switch fun := x.Call.Fun.(type) {
	case *ast.FuncLit:
		r.goCount++
		name = "g" + strconv.Itoa(r.goCount)
		if len(x.Call.Args) == 0 && len(fun.Type.Params.List) == 0 {
			body = r.rsBlock(fun.Body).List
		} else {
			// Keep the argument-passing semantics by invoking the
			// rewritten literal inside the thread body. NOTE: unlike a
			// real go statement, the arguments are evaluated when the
			// thread runs, not at spawn; the rewriter accepts only
			// effect-free argument expressions elsewhere, so the
			// difference is not observable for the supported subset.
			inner := call(r.rxFuncLit(fun), r.rxList(x.Call.Args)...)
			body = []ast.Stmt{exprStmt(inner)}
		}
	case *ast.Ident:
		use, ok := r.info.Uses[fun].(*types.Func)
		if !ok || use.Pkg() != r.pkg {
			r.errf(x.Pos(), "go statement target must be a package function or literal")
			return []ast.Stmt{x}
		}
		name = fun.Name
		args := append([]ast.Expr{tArg()}, r.rxList(x.Call.Args)...)
		body = []ast.Stmt{exprStmt(call(sel(id("_s"), fun.Name), args...))}
	default:
		r.errf(x.Pos(), "go statement target must be a package function or literal")
		return []ast.Stmt{x}
	}
	thread := &ast.FuncLit{Type: coreT(), Body: &ast.BlockStmt{List: body}}
	return []ast.Stmt{exprStmt(call(sel(tArg(), "Go"), strLit(name), thread))}
}

// rsIf rewrites an if statement; an init statement that expands to
// multiple statements hoists into a wrapping block.
func (r *rewriter) rsIf(x *ast.IfStmt) []ast.Stmt {
	init, hoisted := r.rsOne(x.Init)
	out := &ast.IfStmt{Init: init, Cond: r.rx(x.Cond), Body: r.rsBlock(x.Body)}
	if x.Else != nil {
		elseStmt, expanded := r.rsOne(x.Else)
		if elseStmt == nil {
			elseStmt = &ast.BlockStmt{List: expanded}
		}
		out.Else = elseStmt
	}
	if hoisted != nil {
		return []ast.Stmt{&ast.BlockStmt{List: append(hoisted, out)}}
	}
	return []ast.Stmt{out}
}

func (r *rewriter) rsFor(x *ast.ForStmt) []ast.Stmt {
	init, hoisted := r.rsOne(x.Init)
	post, postHoisted := r.rsOne(x.Post)
	if postHoisted != nil {
		r.errf(x.Pos(), "for post statement expands to multiple statements (unsupported)")
		return []ast.Stmt{x}
	}
	out := &ast.ForStmt{Init: init, Cond: r.rx(x.Cond), Post: post, Body: r.rsBlock(x.Body)}
	if hoisted != nil {
		return []ast.Stmt{&ast.BlockStmt{List: append(hoisted, out)}}
	}
	return []ast.Stmt{out}
}

// rsRange desugars `for v := range ch` into an explicit receive loop;
// non-channel ranges pass through.
func (r *rewriter) rsRange(x *ast.RangeStmt) []ast.Stmt {
	tv, ok := r.info.Types[x.X]
	if !ok {
		r.errf(x.Pos(), "cannot type range expression")
		return []ast.Stmt{x}
	}
	if _, isChan := tv.Type.Underlying().(*types.Chan); !isChan {
		return []ast.Stmt{&ast.RangeStmt{
			Key: x.Key, Value: x.Value, Tok: x.Tok,
			X: r.rx(x.X), Body: r.rsBlock(x.Body),
		}}
	}
	if x.Tok == token.ASSIGN {
		r.errf(x.Pos(), "range over a channel with = is unsupported (use :=)")
		return []ast.Stmt{x}
	}
	keyName := "_"
	if ident, ok := x.Key.(*ast.Ident); ok {
		keyName = ident.Name
	}
	r.needRecv = true
	recv := call(generic("_recv", r.chanElem(x.X)), tArg(), r.chanExpr(x.X))
	loopBody := []ast.Stmt{
		&ast.AssignStmt{
			Lhs: []ast.Expr{id(keyName), id("_ok")},
			Tok: token.DEFINE,
			Rhs: []ast.Expr{recv},
		},
		&ast.IfStmt{
			Cond: &ast.UnaryExpr{Op: token.NOT, X: id("_ok")},
			Body: &ast.BlockStmt{List: []ast.Stmt{&ast.BranchStmt{Tok: token.BREAK}}},
		},
	}
	loopBody = append(loopBody, r.rsBlock(x.Body).List...)
	return []ast.Stmt{&ast.ForStmt{Body: &ast.BlockStmt{List: loopBody}}}
}

// rsSelect desugars a select statement into _t.Select plus a switch
// over the chosen case.
func (r *rewriter) rsSelect(x *ast.SelectStmt) []ast.Stmt {
	var cases []ast.Expr // core.SelectCase composite literals
	var clauses []ast.Stmt
	for i, raw := range x.Body.List {
		cc := raw.(*ast.CommClause)
		if cc.Comm == nil {
			r.errf(cc.Pos(), "select with default is unsupported")
			return []ast.Stmt{x}
		}
		var elts []ast.Expr
		var binds []ast.Stmt
		switch comm := cc.Comm.(type) {
		case *ast.SendStmt:
			elts = []ast.Expr{
				&ast.KeyValueExpr{Key: id("Ch"), Value: r.chanExpr(comm.Chan)},
				&ast.KeyValueExpr{Key: id("Send"), Value: id("true")},
				&ast.KeyValueExpr{Key: id("Val"), Value: r.rx(comm.Value)},
			}
		case *ast.ExprStmt:
			un, ok := comm.X.(*ast.UnaryExpr)
			if !ok || un.Op != token.ARROW {
				r.errf(cc.Pos(), "unsupported select case")
				return []ast.Stmt{x}
			}
			elts = []ast.Expr{&ast.KeyValueExpr{Key: id("Ch"), Value: r.chanExpr(un.X)}}
		case *ast.AssignStmt:
			un, ok := comm.Rhs[0].(*ast.UnaryExpr)
			if !ok || un.Op != token.ARROW {
				r.errf(cc.Pos(), "unsupported select case")
				return []ast.Stmt{x}
			}
			elts = []ast.Expr{&ast.KeyValueExpr{Key: id("Ch"), Value: r.chanExpr(un.X)}}
			elem := r.chanElem(un.X)
			r.needCast = true
			castCall := call(generic("_cast", elem), id("_v"), id("_ok"))
			lhs := []ast.Expr{r.plainLHS(comm.Lhs[0]), id("_")}
			if len(comm.Lhs) == 2 {
				lhs[1] = r.plainLHS(comm.Lhs[1])
			}
			binds = []ast.Stmt{&ast.AssignStmt{Lhs: lhs, Tok: comm.Tok, Rhs: []ast.Expr{castCall}}}
		default:
			r.errf(cc.Pos(), "unsupported select case")
			return []ast.Stmt{x}
		}
		cases = append(cases, &ast.CompositeLit{Elts: elts})
		clauses = append(clauses, &ast.CaseClause{
			List: []ast.Expr{intLit(i)},
			Body: append(binds, r.rsList(cc.Body)...),
		})
	}
	caseList := &ast.CompositeLit{
		Type: &ast.ArrayType{Elt: sel(id("core"), "SelectCase")},
		Elts: cases,
	}
	pick := &ast.AssignStmt{
		Lhs: []ast.Expr{id("_i"), id("_v"), id("_ok")},
		Tok: token.DEFINE,
		Rhs: []ast.Expr{call(sel(tArg(), "Select"), caseList)},
	}
	discard := &ast.AssignStmt{
		Lhs: []ast.Expr{id("_"), id("_")},
		Tok: token.ASSIGN,
		Rhs: []ast.Expr{id("_v"), id("_ok")},
	}
	sw := &ast.SwitchStmt{Tag: id("_i"), Body: &ast.BlockStmt{List: clauses}}
	return []ast.Stmt{&ast.BlockStmt{List: []ast.Stmt{pick, discard, sw}}}
}

func (r *rewriter) rsSwitch(x *ast.SwitchStmt) []ast.Stmt {
	init, hoisted := r.rsOne(x.Init)
	var clauses []ast.Stmt
	for _, raw := range x.Body.List {
		cc := raw.(*ast.CaseClause)
		clauses = append(clauses, &ast.CaseClause{List: r.rxList(cc.List), Body: r.rsList(cc.Body)})
	}
	out := &ast.SwitchStmt{Init: init, Tag: r.rx(x.Tag), Body: &ast.BlockStmt{List: clauses}}
	if hoisted != nil {
		return []ast.Stmt{&ast.BlockStmt{List: append(hoisted, out)}}
	}
	return []ast.Stmt{out}
}

// ---------------------------------------------------------------------------
// Function declarations.

// methodDecl turns a top-level function into a progState method with a
// leading core.T parameter.
func (r *rewriter) methodDecl(fd *ast.FuncDecl) *ast.FuncDecl {
	params := []*ast.Field{{Names: []*ast.Ident{id("_t")}, Type: sel(id("core"), "T")}}
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			params = append(params, &ast.Field{Names: field.Names, Type: r.paramType(field)})
		}
	}
	if fd.Type.Results != nil {
		for _, field := range fd.Type.Results.List {
			if r.coreParamType(field.Type) != nil {
				r.errf(field.Pos(), "sync/channel-typed results are unsupported")
			}
		}
	}
	return &ast.FuncDecl{
		Recv: &ast.FieldList{List: []*ast.Field{{
			Names: []*ast.Ident{id("_s")},
			Type:  &ast.StarExpr{X: id("progState")},
		}}},
		Name: id(fd.Name.Name),
		Type: &ast.FuncType{
			Params:  &ast.FieldList{List: params},
			Results: fd.Type.Results,
		},
		Body: r.rsBlock(fd.Body),
	}
}

// paramType maps a parameter's type to its instrumented form.
func (r *rewriter) paramType(field *ast.Field) ast.Expr {
	if t := r.coreParamType(field.Type); t != nil {
		return t
	}
	return field.Type
}

// coreParamType returns the core replacement for sync/chan types, or
// nil when the type passes through untouched.
func (r *rewriter) coreParamType(t ast.Expr) ast.Expr {
	switch x := t.(type) {
	case *ast.ChanType:
		return sel(id("core"), "Chan")
	case *ast.StarExpr:
		return r.coreParamType(x.X)
	case *ast.SelectorExpr:
		if base, ok := x.X.(*ast.Ident); ok && base.Name == "sync" {
			switch x.Sel.Name {
			case "Mutex":
				return sel(id("core"), "Mutex")
			case "RWMutex":
				return sel(id("core"), "RWMutex")
			case "WaitGroup":
				return sel(id("core"), "WaitGroup")
			case "Cond":
				return sel(id("core"), "Cond")
			}
		}
	}
	return nil
}
