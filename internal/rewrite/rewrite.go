// Package rewrite is the source-to-source instrumentation layer: it
// takes a small, ordinary Go package — goroutines, sync.Mutex,
// sync.WaitGroup, channels, select — and emits a self-contained
// instrumented package whose every concurrency operation and shared
// access goes through the core.T runtime API, so the program runs
// under the controlled scheduler and all the dynamic tools (noise,
// exploration, fuzzing, race detection, record/replay) apply to it
// unchanged.
//
// This is the paper's source-level instrumentor (§3) turned on real
// code instead of hand-ported benchmark bodies. The pipeline:
//
//  1. parse with go/ast and type-check with go/types;
//  2. map the concurrency vocabulary: `go` statements become t.Go,
//     sync.Mutex/RWMutex/Cond become the core equivalents,
//     sync.WaitGroup and channel make/send/recv/close/select become
//     core.WaitGroup and core.Chan;
//  3. instrument shared data: package-level variables and locals that
//     escape into goroutines become IntVar/RefVar probes, while
//     provably thread-local accesses stay plain Go — the escape
//     analysis result also flows into an instrument.Plan (via
//     staticinfo.Info) so main-confined package variables keep no
//     probes either;
//  4. emit the rewritten source plus a registration file that calls
//     repository.Register, making the program a first-class citizen of
//     the benchmark.
//
// The rewriter handles a documented subset (see DESIGN.md, "The
// rewrite layer"); anything outside it fails the rewrite with a
// position-tagged error rather than emitting wrong code.
package rewrite

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"

	"mtbench/internal/staticinfo"
)

// objKind classifies an instrumented object.
type objKind int

const (
	objMutex objKind = iota
	objRW
	objWG
	objCond
	objChan
	objInt
	objRef
)

// object is one source variable the rewriter maps onto a runtime
// object.
type object struct {
	kind     objKind
	goName   string // identifier in the generated code
	objName  string // runtime object name (unique per package)
	pkgLevel bool
	elem     string          // objChan: element type
	capExpr  ast.Expr        // objChan: buffer capacity (nil = 0)
	init     ast.Expr        // objInt/objRef: package-level initializer
	condMu   types.Object    // objCond: the associated mutex variable
	intKind  types.BasicKind // objInt: types.Int or types.Int64
	refType  string          // objRef: held type
	isParam  bool            // alias for a parameter, not a creation site
	shared   bool            // data vars: referenced from spawned code
}

func (o *object) isData() bool { return o.kind == objInt || o.kind == objRef }

// Result is a rewritten package ready to be written to disk.
type Result struct {
	// Name is the registry (and generated package) name.
	Name string
	// Meta is the parsed directive metadata.
	Meta *Meta
	// Files maps generated file name to gofmt-clean contents
	// ("prog.go" and "register.go").
	Files map[string][]byte
	// SharedVars and LocalVars are the escape-analysis verdicts over
	// the instrumented data variables; LocalVars feed the emitted
	// instrument.Plan.
	SharedVars, LocalVars []string
	// Threads is the static thread count (main + go statements).
	Threads int
}

type rewriter struct {
	dir       string
	fset      *token.FileSet
	files     []*ast.File
	fileNames []string
	pkg       *types.Package
	info      *types.Info
	meta      *Meta

	objects      map[types.Object]*object
	pkgObjs      []*object // package-level, in declaration order
	escaping     map[types.Object]bool
	spawnedFuncs map[types.Object]bool
	unresolved   bool // closure values in play: disable plan pruning

	usedNames map[string]int
	goCount   int
	threads   int

	needRecv, needRecv1, needCast bool

	errs []error
}

// Rewrite instruments the Go package in dir.
func Rewrite(dir string) (*Result, error) {
	r := &rewriter{
		dir:          dir,
		fset:         token.NewFileSet(),
		objects:      map[types.Object]*object{},
		escaping:     map[types.Object]bool{},
		spawnedFuncs: map[types.Object]bool{},
		usedNames:    map[string]int{},
	}
	if err := r.load(); err != nil {
		return nil, err
	}
	r.validateImports()
	r.classifyPkgVars()
	r.analyzeFuncs()
	if err := r.firstErr(); err != nil {
		return nil, err
	}
	files, err := r.emit()
	if err != nil {
		return nil, err
	}
	shared, local := r.planSets()
	return &Result{
		Name:       r.meta.Name,
		Meta:       r.meta,
		Files:      files,
		SharedVars: shared,
		LocalVars:  local,
		Threads:    1 + r.threads,
	}, nil
}

// load parses and type-checks the package.
func (r *rewriter) load() error {
	entries, err := os.ReadDir(r.dir)
	if err != nil {
		return err
	}
	var sources [][]byte
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || filepath.Ext(name) != ".go" {
			continue
		}
		src, err := os.ReadFile(filepath.Join(r.dir, name))
		if err != nil {
			return err
		}
		f, err := parser.ParseFile(r.fset, filepath.Join(r.dir, name), src, parser.SkipObjectResolution)
		if err != nil {
			return err
		}
		r.files = append(r.files, f)
		r.fileNames = append(r.fileNames, name)
		sources = append(sources, src)
	}
	if len(r.files) == 0 {
		return fmt.Errorf("rewrite: no Go files in %s", r.dir)
	}
	pkgName := r.files[0].Name.Name
	meta, err := parseMeta(pkgName, sources)
	if err != nil {
		return fmt.Errorf("rewrite: %w", err)
	}
	r.meta = meta

	r.info = &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Defs:  map[*ast.Ident]types.Object{},
		Uses:  map[*ast.Ident]types.Object{},
	}
	conf := types.Config{Importer: importer.ForCompiler(r.fset, "source", nil)}
	pkg, err := conf.Check(pkgName, r.fset, r.files, r.info)
	if err != nil {
		return fmt.Errorf("rewrite: type-check %s: %w", r.dir, err)
	}
	r.pkg = pkg
	if pkg.Scope().Lookup("Main") == nil {
		return fmt.Errorf("rewrite: package %s has no func Main() entry point", pkgName)
	}
	return nil
}

func (r *rewriter) errf(pos token.Pos, format string, args ...any) {
	where := r.fset.Position(pos).String()
	r.errs = append(r.errs, fmt.Errorf("%s: %s", where, fmt.Sprintf(format, args...)))
}

func (r *rewriter) firstErr() error {
	if len(r.errs) == 0 {
		return nil
	}
	return r.errs[0]
}

// validateImports restricts inputs to the vocabulary the rewriter can
// translate: only "sync" may be imported.
func (r *rewriter) validateImports() {
	for _, f := range r.files {
		for _, imp := range f.Imports {
			if v, _ := strconv.Unquote(imp.Path.Value); v != "sync" {
				r.errf(imp.Pos(), "unsupported import %s (only \"sync\" is translatable)", imp.Path.Value)
			}
		}
	}
}

// allocName reserves a unique runtime object name.
func (r *rewriter) allocName(pref string) string {
	n := r.usedNames[pref]
	r.usedNames[pref] = n + 1
	if n == 0 {
		return pref
	}
	return pref + strconv.Itoa(n+1)
}

// syncKind maps a type to the instrumented kind of a sync package
// object, looking through one pointer.
func syncKind(t types.Type) (objKind, bool) {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return 0, false
	}
	switch named.Obj().Name() {
	case "Mutex":
		return objMutex, true
	case "RWMutex":
		return objRW, true
	case "WaitGroup":
		return objWG, true
	case "Cond":
		return objCond, true
	}
	return 0, false
}

// typeStr renders a type with package-local names unqualified.
func (r *rewriter) typeStr(t types.Type) string {
	return types.TypeString(t, func(p *types.Package) string {
		if p == r.pkg {
			return ""
		}
		return p.Name()
	})
}

// classify builds the object skeleton for a variable of type t, or
// reports the variable untranslatable.
func (r *rewriter) classify(name string, t types.Type, pos token.Pos) *object {
	if k, ok := syncKind(t); ok {
		return &object{kind: k, goName: name}
	}
	if ch, ok := t.(*types.Chan); ok {
		return &object{kind: objChan, goName: name, elem: r.typeStr(ch.Elem())}
	}
	if b, ok := t.(*types.Basic); ok {
		switch b.Kind() {
		case types.Int, types.Int64:
			return &object{kind: objInt, goName: name, intKind: b.Kind()}
		case types.Bool:
			r.errf(pos, "bool variable %s: model flags as int (0/1)", name)
			return nil
		}
	}
	return &object{kind: objRef, goName: name, refType: r.typeStr(t)}
}

// classifyPkgVars turns every package-level var into an object.
func (r *rewriter) classifyPkgVars() {
	for _, f := range r.files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs := spec.(*ast.ValueSpec)
				for i, name := range vs.Names {
					def := r.info.Defs[name]
					if def == nil {
						continue
					}
					o := r.classify(name.Name, def.Type(), name.Pos())
					if o == nil {
						continue
					}
					o.pkgLevel = true
					o.objName = r.allocName(name.Name)
					var init ast.Expr
					if i < len(vs.Values) {
						init = vs.Values[i]
					}
					r.initObject(o, init, name.Pos())
					r.objects[def] = o
					r.pkgObjs = append(r.pkgObjs, o)
				}
			}
		}
	}
}

// initObject validates and records an object's initializer.
func (r *rewriter) initObject(o *object, init ast.Expr, pos token.Pos) {
	switch o.kind {
	case objMutex, objRW, objWG:
		if init != nil {
			if _, ok := init.(*ast.CompositeLit); !ok {
				r.errf(pos, "%s: sync objects must use their zero value", o.goName)
			}
		}
	case objCond:
		mu := r.condTarget(init)
		if mu == nil {
			r.errf(pos, "%s: condition variables must be initialized with sync.NewCond(&mu)", o.goName)
			return
		}
		o.condMu = mu
	case objChan:
		if init == nil {
			r.errf(pos, "%s: channels must be initialized with make", o.goName)
			return
		}
		capExpr, ok := r.makeChan(init)
		if !ok {
			r.errf(pos, "%s: channels must be initialized with make(chan T[, cap])", o.goName)
			return
		}
		o.capExpr = capExpr
	case objInt, objRef:
		o.init = init
		if init != nil {
			ast.Inspect(init, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok {
					if obj := r.info.Uses[id]; obj != nil {
						if _, isVar := obj.(*types.Var); isVar && obj.Parent() == r.pkg.Scope() {
							r.errf(pos, "%s: initializer references package variable %s (unsupported)", o.goName, id.Name)
						}
					}
				}
				return true
			})
		}
	}
}

// condTarget extracts the mutex variable from sync.NewCond(&mu).
func (r *rewriter) condTarget(init ast.Expr) types.Object {
	call, ok := init.(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return nil
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "NewCond" {
		return nil
	}
	un, ok := call.Args[0].(*ast.UnaryExpr)
	if !ok || un.Op != token.AND {
		return nil
	}
	id, ok := un.X.(*ast.Ident)
	if !ok {
		return nil
	}
	return r.info.Uses[id]
}

// makeChan matches make(chan T[, cap]) and returns the capacity expr.
func (r *rewriter) makeChan(e ast.Expr) (ast.Expr, bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return nil, false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "make" {
		return nil, false
	}
	if _, isBuiltin := r.info.Uses[id].(*types.Builtin); !isBuiltin {
		return nil, false
	}
	if len(call.Args) == 2 {
		return call.Args[1], true
	}
	if len(call.Args) == 1 {
		return nil, true
	}
	return nil, false
}

// funcDecls returns the package's function declarations in file/source
// order.
func (r *rewriter) funcDecls() []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range r.files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				out = append(out, fd)
			}
		}
	}
	return out
}

// analyzeFuncs runs the pre-transform analyses: validate declarations,
// register instrumented locals, run the escape analysis, compute the
// spawned-code reachability that decides shared vs main-confined, and
// count threads.
func (r *rewriter) analyzeFuncs() {
	decls := r.funcDecls()
	for _, fd := range decls {
		if fd.Recv != nil {
			r.errf(fd.Pos(), "methods are unsupported")
		}
	}
	for _, f := range r.files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			ast.Inspect(gd, func(n ast.Node) bool {
				switch n.(type) {
				case *ast.ChanType:
					r.errf(n.Pos(), "channel-typed fields in type declarations are unsupported")
				case *ast.SelectorExpr:
					if id, ok := n.(*ast.SelectorExpr).X.(*ast.Ident); ok && id.Name == "sync" {
						r.errf(n.Pos(), "sync types inside type declarations are unsupported")
					}
				}
				return true
			})
		}
	}

	for _, fd := range decls {
		r.collectLocals(fd)
	}
	r.escapePass(decls)
	r.spawnPass(decls)
	r.sharedPass(decls)
}

// collectLocals registers instrumented local declarations (sync
// objects, channels, conds) and rewrites param aliases, for one
// function.
func (r *rewriter) collectLocals(fd *ast.FuncDecl) {
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				def := r.info.Defs[name]
				if def == nil {
					continue
				}
				if k, ok := syncKind(def.Type()); ok {
					r.objects[def] = &object{kind: k, goName: name.Name, objName: name.Name, isParam: true}
				} else if ch, ok := def.Type().(*types.Chan); ok {
					r.objects[def] = &object{kind: objChan, goName: name.Name, objName: name.Name, isParam: true, elem: r.typeStr(ch.Elem())}
				}
			}
		}
	}
	if fd.Body == nil {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ident, init := localDeclSite(n)
		if ident == nil {
			return true
		}
		def := r.info.Defs[ident]
		if def == nil || r.objects[def] != nil {
			return true
		}
		t := def.Type()
		if k, ok := syncKind(t); ok {
			o := &object{kind: k, goName: ident.Name, objName: r.allocName(ident.Name)}
			if k == objCond {
				if mu := r.condTarget(init); mu != nil {
					o.condMu = mu
				} else {
					r.errf(ident.Pos(), "%s: condition variables must be initialized with sync.NewCond(&mu)", ident.Name)
				}
			}
			r.objects[def] = o
		} else if ch, ok := t.(*types.Chan); ok {
			capExpr, ok := r.makeChan(init)
			if !ok {
				r.errf(ident.Pos(), "%s: channels must be created with make(chan T[, cap])", ident.Name)
				return true
			}
			r.objects[def] = &object{kind: objChan, goName: ident.Name, objName: r.allocName(ident.Name), elem: r.typeStr(ch.Elem()), capExpr: capExpr}
		}
		return true
	})
}

// localDeclSite matches the declaration forms that can introduce an
// instrumented local: `x := E`, `var x T = E`.
func localDeclSite(n ast.Node) (*ast.Ident, ast.Expr) {
	switch s := n.(type) {
	case *ast.AssignStmt:
		if s.Tok == token.DEFINE && len(s.Lhs) == 1 && len(s.Rhs) == 1 {
			if id, ok := s.Lhs[0].(*ast.Ident); ok {
				return id, s.Rhs[0]
			}
		}
	case *ast.ValueSpec:
		if len(s.Names) == 1 {
			var init ast.Expr
			if len(s.Values) == 1 {
				init = s.Values[0]
			}
			return s.Names[0], init
		}
	}
	return nil, nil
}

// escapePass finds data locals referenced from a function literal
// other than the one that declared them: those may be touched by
// another thread and get instrumented. Parameters that escape are
// rejected (the call boundary would need by-reference shims).
func (r *rewriter) escapePass(decls []*ast.FuncDecl) {
	for _, fd := range decls {
		if fd.Body == nil {
			continue
		}
		declIn := map[types.Object]ast.Node{}
		if fd.Type.Params != nil {
			for _, field := range fd.Type.Params.List {
				for _, name := range field.Names {
					if def := r.info.Defs[name]; def != nil {
						declIn[def] = fd
					}
				}
			}
		}
		var walk func(n ast.Node, lit ast.Node)
		walk = func(n ast.Node, lit ast.Node) {
			ast.Inspect(n, func(node ast.Node) bool {
				switch x := node.(type) {
				case *ast.FuncLit:
					walk(x.Body, x)
					return false
				case *ast.Ident:
					if def := r.info.Defs[x]; def != nil {
						if _, isVar := def.(*types.Var); isVar {
							declIn[def] = lit
						}
					}
					use := r.info.Uses[x]
					if use == nil {
						return true
					}
					from, local := declIn[use]
					if !local || from == lit {
						return true
					}
					if r.objects[use] != nil {
						return true // sync/chan objects cross literals freely
					}
					if _, isVar := use.(*types.Var); !isVar {
						return true
					}
					if _, isFunc := use.Type().Underlying().(*types.Signature); isFunc {
						// A closure value crossing scopes: its body's
						// accesses cannot be attributed, so pruning is off.
						r.unresolved = true
						return true
					}
					if from == fd && isParamOf(fd, use, r.info) {
						r.errf(x.Pos(), "parameter %s captured by a function literal is unsupported", x.Name)
						return true
					}
					if !r.escaping[use] {
						r.escaping[use] = true
						o := r.classify(use.Name(), use.Type(), x.Pos())
						if o != nil {
							o.objName = r.allocName(use.Name())
							r.objects[use] = o
						}
					}
				}
				return true
			})
		}
		walk(fd.Body, fd)
	}
}

func isParamOf(fd *ast.FuncDecl, obj types.Object, info *types.Info) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if info.Defs[name] == obj {
				return true
			}
		}
	}
	return false
}

// spawnPass computes the set of package functions reachable from `go`
// statements, and counts static thread creations.
func (r *rewriter) spawnPass(decls []*ast.FuncDecl) {
	bodies := map[types.Object]*ast.FuncDecl{}
	for _, fd := range decls {
		if def := r.info.Defs[fd.Name]; def != nil {
			bodies[def] = fd
		}
	}
	var queue []types.Object
	seed := func(n ast.Node) {
		ast.Inspect(n, func(node ast.Node) bool {
			gs, ok := node.(*ast.GoStmt)
			if !ok {
				return true
			}
			r.threads++
			switch fun := gs.Call.Fun.(type) {
			case *ast.Ident:
				if def := r.info.Uses[fun]; def != nil && bodies[def] != nil {
					queue = append(queue, def)
				}
			case *ast.FuncLit:
				// The literal body is spawned code: collect its calls.
				ast.Inspect(fun.Body, func(inner ast.Node) bool {
					call, ok := inner.(*ast.CallExpr)
					if !ok {
						return true
					}
					if id, ok := call.Fun.(*ast.Ident); ok {
						if def := r.info.Uses[id]; def != nil && bodies[def] != nil {
							queue = append(queue, def)
						}
					}
					return true
				})
			}
			return true
		})
	}
	for _, fd := range decls {
		if fd.Body != nil {
			seed(fd.Body)
		}
	}
	for len(queue) > 0 {
		def := queue[0]
		queue = queue[1:]
		if r.spawnedFuncs[def] {
			continue
		}
		r.spawnedFuncs[def] = true
		fd := bodies[def]
		if fd == nil || fd.Body == nil {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := call.Fun.(*ast.Ident); ok {
				if d := r.info.Uses[id]; d != nil && bodies[d] != nil {
					queue = append(queue, d)
				}
			}
			return true
		})
	}
}

// sharedPass marks every instrumented data object referenced from
// spawned code (a go literal, or a function reachable from one) as
// shared; the rest stay main-confined and their access probes are
// pruned from the plan.
func (r *rewriter) sharedPass(decls []*ast.FuncDecl) {
	for _, fd := range decls {
		if fd.Body == nil {
			continue
		}
		base := false
		if def := r.info.Defs[fd.Name]; def != nil && r.spawnedFuncs[def] {
			base = true
		}
		var walk func(n ast.Node, spawned bool)
		walk = func(n ast.Node, spawned bool) {
			ast.Inspect(n, func(node ast.Node) bool {
				switch x := node.(type) {
				case *ast.GoStmt:
					if lit, ok := x.Call.Fun.(*ast.FuncLit); ok {
						for _, arg := range x.Call.Args {
							walk(arg, spawned)
						}
						walk(lit.Body, true)
						return false
					}
					return true
				case *ast.FuncLit:
					walk(x.Body, spawned)
					return false
				case *ast.Ident:
					if use := r.info.Uses[x]; use != nil && spawned {
						if o := r.objects[use]; o != nil && o.isData() {
							o.shared = true
						}
					}
				}
				return true
			})
		}
		walk(fd.Body, base)
	}
}

// planSets returns the shared/local name sets over instrumented data
// objects, sorted.
func (r *rewriter) planSets() (shared, local []string) {
	var objs []*object
	for _, o := range r.objects {
		if o.isData() {
			objs = append(objs, o)
		}
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i].objName < objs[j].objName })
	for _, o := range objs {
		if o.shared || r.unresolved {
			shared = append(shared, o.objName)
		} else {
			local = append(local, o.objName)
		}
	}
	return shared, local
}

// planFor exposes the escape verdicts through the staticinfo types, so
// the rewrite layer produces its pruning plan the same way the static
// analyzer does for hand-written programs (Figure 1: statics feed the
// instrumentor).
func (r *rewriter) planFor() *staticinfo.Info {
	shared, local := r.planSets()
	vars := map[string]staticinfo.VarKind{}
	for _, o := range r.objects {
		if o.kind == objInt {
			vars[o.objName] = staticinfo.KindInt
		} else if o.kind == objRef {
			vars[o.objName] = staticinfo.KindRef
		}
	}
	return &staticinfo.Info{
		Func:       "Body",
		Vars:       vars,
		SharedVars: shared,
		LocalVars:  local,
	}
}
