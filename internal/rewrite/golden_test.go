package rewrite

import (
	"path/filepath"
	"testing"
)

// TestGeneratedGolden pins the rewriter's output byte-for-byte: the
// checked-in files under internal/genprog ARE the golden files, and
// any rewriter change that alters generated output must regenerate
// them (run cmd/instrument) in the same commit. This is the same drift
// gate `instrument -verify` runs in CI.
func TestGeneratedGolden(t *testing.T) {
	tree, results, err := GenerateTree("testdata/src")
	if err != nil {
		t.Fatal(err)
	}
	if drift := DiffTree(tree, filepath.Join("..", "genprog")); len(drift) > 0 {
		t.Fatalf("generated output drifted from checked-in internal/genprog: %v\n(run cmd/instrument to regenerate)", drift)
	}
	wantFiles := 1 + 2*len(results) // aggregator + prog.go/register.go each
	if len(tree) != wantFiles {
		t.Fatalf("generated %d files, want %d", len(tree), wantFiles)
	}
}

// TestGeneratedDeterministic pins that two independent rewrites of the
// same input produce identical bytes — thread naming, object naming
// and emission order are all deterministic.
func TestGeneratedDeterministic(t *testing.T) {
	first, _, err := GenerateTree("testdata/src")
	if err != nil {
		t.Fatal(err)
	}
	second, _, err := GenerateTree("testdata/src")
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != len(second) {
		t.Fatalf("file counts differ: %d vs %d", len(first), len(second))
	}
	for p, want := range first {
		if string(second[p]) != string(want) {
			t.Errorf("%s: non-deterministic output", p)
		}
	}
}
